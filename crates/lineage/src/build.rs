//! Lineage construction: the provenance-tracking deterministic join.
//!
//! The joins here run on the database's dictionary-encoded columns — the
//! same vid representation the engine executes plans on — and, like the
//! engine's columnar operators, they are **sort-merge joins**: both sides
//! are brought into join-key order (keys of up to four vids packed into
//! one `u128`, wider keys ordered as [`RowKey`]s) and matching key blocks
//! are enumerated by one linear merge. No hashing, no per-probe
//! allocation; the emitted implicant sets are identical because
//! [`crate::formula::Dnf`] canonicalizes implicant order. Answer keys are
//! decoded to [`Value`]s once, when the per-answer DNFs are grouped. The
//! codec lock is held only for the up-front encode and the final decode,
//! never across the joins.

use crate::formula::Dnf;
use lapush_engine::kernels::{self, Key};
use lapush_engine::prepare::{PrepareError, PreparedAtom, ScanShape};
use lapush_query::{Atom, Query, Var};
use lapush_storage::{Database, FxHashMap, RowKey, TupleId, Value};
use std::fmt;

/// Lineage of one answer tuple.
#[derive(Debug, Clone)]
pub struct AnswerLineage {
    /// The answer (head variables in head order).
    pub key: Box<[Value]>,
    /// Monotone DNF over formula variables (see [`Lineage::var_tuples`]).
    pub dnf: Dnf,
}

/// Lineage of all answers of a query: a shared variable table plus one DNF
/// per answer. `P(answer) = P(dnf)` under `var_probs`.
#[derive(Debug, Clone)]
pub struct Lineage {
    /// Probability per formula variable.
    pub var_probs: Vec<f64>,
    /// Base tuple per formula variable.
    pub var_tuples: Vec<TupleId>,
    /// Per-answer lineages, sorted by answer key.
    pub answers: Vec<AnswerLineage>,
}

impl Lineage {
    /// Lineage of one answer by key.
    pub fn answer(&self, key: &[Value]) -> Option<&AnswerLineage> {
        self.answers
            .binary_search_by(|a| a.key.as_ref().cmp(key))
            .ok()
            .map(|i| &self.answers[i])
    }

    /// The Boolean query's lineage (the single empty-key answer), or an
    /// empty (false) DNF.
    pub fn boolean_dnf(&self) -> Dnf {
        self.answer(&[]).map(|a| a.dnf.clone()).unwrap_or_default()
    }

    /// Maximum lineage size across answers (the paper's `max[lin]`).
    pub fn max_size(&self) -> usize {
        self.answers.iter().map(|a| a.dnf.len()).max().unwrap_or(0)
    }

    /// Total number of implicants across answers.
    pub fn total_size(&self) -> usize {
        self.answers.iter().map(|a| a.dnf.len()).sum()
    }
}

/// Errors raised during lineage construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// Atom references a missing relation.
    UnknownRelation(String),
    /// Atom/relation arity mismatch.
    AtomArity(String),
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            LineageError::AtomArity(r) => write!(f, "arity mismatch on `{r}`"),
        }
    }
}

impl std::error::Error for LineageError {}

/// Intermediate provenance relation: encoded bindings plus contributing
/// formula variables (not deduplicated — every join path is one implicant).
struct ProvRel {
    vars: Vec<Var>,
    rows: Vec<(RowKey, Vec<u32>)>,
}

impl From<PrepareError> for LineageError {
    fn from(e: PrepareError) -> Self {
        match e {
            PrepareError::UnknownRelation(r) => LineageError::UnknownRelation(r),
            PrepareError::AtomArity { relation, .. } => LineageError::AtomArity(relation),
        }
    }
}

/// Build the lineage of every answer of `q` on `db` (paper Section 2:
/// `F_{q,D} = ∨_θ θ(g₁) ∧ … ∧ θ(g_m)`).
pub fn build_lineage(db: &Database, q: &Query) -> Result<Lineage, LineageError> {
    let prepared = lapush_engine::prepare::prepare_atoms(db, q)?;
    let mut var_probs: Vec<f64> = Vec::new();
    let mut var_tuples: Vec<TupleId> = Vec::new();
    let mut tuple_to_var: FxHashMap<TupleId, u32> = FxHashMap::default();

    // Scan every atom with provenance.
    let mut scans: Vec<ProvRel> = Vec::with_capacity(q.atoms().len());
    for (atom, prep) in q.atoms().iter().zip(&prepared) {
        scans.push(scan_atom(
            db,
            prep,
            q,
            atom,
            &mut var_probs,
            &mut var_tuples,
            &mut tuple_to_var,
        ));
    }

    // Greedy connected join order.
    let mut acc = {
        let start = scans
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.rows.len())
            .map(|(i, _)| i)
            .expect("query has atoms");
        scans.swap_remove(start)
    };
    while !scans.is_empty() {
        let next = scans
            .iter()
            .enumerate()
            .filter(|(_, r)| r.vars.iter().any(|v| acc.vars.contains(v)))
            .min_by_key(|(_, r)| r.rows.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let rel = scans.swap_remove(next);
        acc = prov_join(&acc, &rel);
    }

    // Group by head variables, decoding answer keys to values here — the
    // lineage boundary, mirroring the engine's answer-set decode (codec
    // re-locked briefly; vids are stable, so the late lookup is sound).
    let head_cols: Vec<usize> = q
        .head()
        .iter()
        .map(|v| {
            acc.vars
                .iter()
                .position(|u| u == v)
                .expect("head var bound in body")
        })
        .collect();
    let codec = db.codec();
    let mut grouped: FxHashMap<Box<[Value]>, Vec<Vec<u32>>> = FxHashMap::default();
    for (key, prov) in acc.rows {
        let akey: Box<[Value]> = head_cols
            .iter()
            .map(|&c| codec.decode(key.get(c)).clone())
            .collect();
        grouped.entry(akey).or_default().push(prov);
    }
    let mut answers: Vec<AnswerLineage> = grouped
        .into_iter()
        .map(|(key, imps)| AnswerLineage {
            key,
            dnf: Dnf::new(imps),
        })
        .collect();
    answers.sort_by(|a, b| a.key.cmp(&b.key));

    Ok(Lineage {
        var_probs,
        var_tuples,
        answers,
    })
}

fn scan_atom(
    db: &Database,
    prep: &PreparedAtom,
    q: &Query,
    atom: &Atom,
    var_probs: &mut Vec<f64>,
    var_tuples: &mut Vec<TupleId>,
    tuple_to_var: &mut FxHashMap<TupleId, u32>,
) -> ProvRel {
    let rel = db.relation(prep.rel);
    let shape = ScanShape::of(q, atom);
    let mut rows = Vec::new();
    prep.for_each_surviving_row(rel, &shape, |i, row| {
        let tid = TupleId::new(prep.rel, i);
        let fv = *tuple_to_var.entry(tid).or_insert_with(|| {
            let v = var_probs.len() as u32;
            var_probs.push(rel.prob(i));
            var_tuples.push(tid);
            v
        });
        let key = RowKey::from_fn(shape.out_cols.len(), |j| row[shape.out_cols[j]]);
        rows.push((key, vec![fv]));
    });
    ProvRel {
        vars: shape.out_vars,
        rows,
    }
}

/// Merge two key-sorted `(key, row)` sequences, invoking `emit` for every
/// matching `(left row, right row)` pair — the block cross product of a
/// sort-merge join (the wide-key fallback; packed keys take
/// [`merge_matches_packed`]).
fn merge_matches<K: Ord>(lkeys: &[(K, u32)], rkeys: &[(K, u32)], mut emit: impl FnMut(u32, u32)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < lkeys.len() && j < rkeys.len() {
        match lkeys[i].0.cmp(&rkeys[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut i1 = i + 1;
                while i1 < lkeys.len() && lkeys[i1].0 == lkeys[i].0 {
                    i1 += 1;
                }
                let mut j1 = j + 1;
                while j1 < rkeys.len() && rkeys[j1].0 == rkeys[j].0 {
                    j1 += 1;
                }
                for &(_, lr) in &lkeys[i..i1] {
                    for &(_, rr) in &rkeys[j..j1] {
                        emit(lr, rr);
                    }
                }
                i = i1;
                j = j1;
            }
        }
    }
}

/// [`merge_matches`] on packed [`Key`] buffers, through the engine's
/// kernel layer: mismatching sides skip ahead by galloping
/// ([`kernels::gallop_ge`]) and matching blocks are delimited by
/// vectorized run detection ([`kernels::run_end`]). Emission order is
/// identical to the linear merge — blocks are visited in key order and
/// crossed left-major.
fn merge_matches_packed(lkeys: &[Key], rkeys: &[Key], mut emit: impl FnMut(u32, u32)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < lkeys.len() && j < rkeys.len() {
        match lkeys[i].k.cmp(&rkeys[j].k) {
            std::cmp::Ordering::Less => i = kernels::gallop_ge(lkeys, i + 1, rkeys[j].k),
            std::cmp::Ordering::Greater => j = kernels::gallop_ge(rkeys, j + 1, lkeys[i].k),
            std::cmp::Ordering::Equal => {
                let i1 = kernels::run_end(lkeys, i);
                let j1 = kernels::run_end(rkeys, j);
                for le in &lkeys[i..i1] {
                    for re in &rkeys[j..j1] {
                        emit(le.row, re.row);
                    }
                }
                i = i1;
                j = j1;
            }
        }
    }
}

/// Pack a binding's join-key vids into one `u128` (≤ 4 columns; shared
/// encoding: [`lapush_storage::pack_vids`]).
fn pack_key(key: &RowKey, cols: &[usize]) -> u128 {
    lapush_storage::pack_vids(cols.iter().map(|&c| key.get(c)))
}

fn prov_join(left: &ProvRel, right: &ProvRel) -> ProvRel {
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(li, v)| right.vars.iter().position(|u| u == v).map(|ri| (li, ri)))
        .collect();
    let right_only: Vec<usize> = (0..right.vars.len())
        .filter(|ri| !shared.iter().any(|&(_, r)| r == *ri))
        .collect();

    let mut out_vars = left.vars.clone();
    out_vars.extend(right_only.iter().map(|&ri| right.vars[ri]));

    let mut rows = Vec::new();
    let mut emit = |lr: u32, rr: u32| {
        let (lkey, lprov) = &left.rows[lr as usize];
        let (rkey, rprov) = &right.rows[rr as usize];
        let key: RowKey = lkey
            .iter()
            .chain(right_only.iter().map(|&c| rkey.get(c)))
            .collect();
        let mut prov = lprov.clone();
        prov.extend_from_slice(rprov);
        rows.push((key, prov));
    };
    let lcols: Vec<usize> = shared.iter().map(|&(c, _)| c).collect();
    let rcols: Vec<usize> = shared.iter().map(|&(_, c)| c).collect();
    if shared.len() <= 4 {
        // Packed-integer keys ([`Key`], the engine's sort entry): one u128
        // comparison per merge step, kernel-accelerated skip and run scan.
        let mut lkeys: Vec<Key> = left
            .rows
            .iter()
            .enumerate()
            .map(|(i, (k, _))| Key {
                k: pack_key(k, &lcols),
                row: i as u32,
            })
            .collect();
        let mut rkeys: Vec<Key> = right
            .rows
            .iter()
            .enumerate()
            .map(|(i, (k, _))| Key {
                k: pack_key(k, &rcols),
                row: i as u32,
            })
            .collect();
        lkeys.sort_unstable();
        rkeys.sort_unstable();
        merge_matches_packed(&lkeys, &rkeys, &mut emit);
    } else {
        // Wide keys: lexicographic RowKey order (see lapush_storage).
        let mut lkeys: Vec<(RowKey, u32)> = left
            .rows
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (RowKey::from_fn(lcols.len(), |s| k.get(lcols[s])), i as u32))
            .collect();
        let mut rkeys: Vec<(RowKey, u32)> = right
            .rows
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (RowKey::from_fn(rcols.len(), |s| k.get(rcols[s])), i as u32))
            .collect();
        lkeys.sort_unstable();
        rkeys.sort_unstable();
        merge_matches(&lkeys, &rkeys, &mut emit);
    }
    ProvRel {
        vars: out_vars,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_prob;
    use lapush_query::parse_query;
    use lapush_storage::tuple::tuple;

    fn example7_db() -> Database {
        let mut db = Database::new();
        let r = db.create_relation("R", 1).unwrap();
        let s = db.create_relation("S", 2).unwrap();
        db.relation_mut(r).push(tuple([1]), 0.5).unwrap();
        db.relation_mut(r).push(tuple([2]), 0.5).unwrap();
        db.relation_mut(s).push(tuple([1, 4]), 0.5).unwrap();
        db.relation_mut(s).push(tuple([1, 5]), 0.5).unwrap();
        db
    }

    #[test]
    fn example_7_lineage() {
        // F = R(1)S(1,4) ∨ R(1)S(1,5); P = 0.375.
        let db = example7_db();
        let q = parse_query("q :- R(x), S(x, y)").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        let f = lin.boolean_dnf();
        assert_eq!(f.len(), 2);
        assert_eq!(f.num_vars(), 3); // R(1) shared, S(1,4), S(1,5)
        assert!((exact_prob(&f, &lin.var_probs) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn per_answer_lineage() {
        let db = example7_db();
        let q = parse_query("q(y) :- R(x), S(x, y)").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        assert_eq!(lin.answers.len(), 2);
        for a in &lin.answers {
            assert_eq!(a.dnf.len(), 1);
            assert!((exact_prob(&a.dnf, &lin.var_probs) - 0.25).abs() < 1e-12);
        }
        assert_eq!(lin.max_size(), 1);
        assert_eq!(lin.total_size(), 2);
    }

    #[test]
    fn example_17_lineage_probability() {
        // Ground truth from the paper: P(q) = 83/512.
        let mut db = Database::new();
        let r = db.create_relation("R", 1).unwrap();
        let s = db.create_relation("S", 1).unwrap();
        let t = db.create_relation("T", 2).unwrap();
        let u = db.create_relation("U", 1).unwrap();
        for x in [1, 2] {
            db.relation_mut(r).push(tuple([x]), 0.5).unwrap();
            db.relation_mut(s).push(tuple([x]), 0.5).unwrap();
            db.relation_mut(u).push(tuple([x]), 0.5).unwrap();
        }
        for (x, y) in [(1, 1), (1, 2), (2, 2)] {
            db.relation_mut(t).push(tuple([x, y]), 0.5).unwrap();
        }
        let q = parse_query("q :- R(x), S(x), T(x, y), U(y)").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        let f = lin.boolean_dnf();
        assert_eq!(f.len(), 3);
        assert!((exact_prob(&f, &lin.var_probs) - 83.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn empty_answer_set() {
        let mut db = Database::new();
        db.create_relation("R", 1).unwrap();
        db.create_relation("S", 2).unwrap();
        let q = parse_query("q :- R(x), S(x, y)").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        assert!(lin.answers.is_empty());
        assert!(lin.boolean_dnf().is_false());
    }

    #[test]
    fn predicates_restrict_lineage() {
        let db = example7_db();
        let q = parse_query("q :- R(x), S(x, y), y <= 4").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        assert_eq!(lin.boolean_dnf().len(), 1);
    }

    #[test]
    fn shared_tuple_gets_one_variable() {
        let db = example7_db();
        let q = parse_query("q :- R(x), S(x, y)").unwrap();
        let lin = build_lineage(&db, &q).unwrap();
        // R(1) occurs in both implicants but is a single formula variable;
        // R(2) is scanned (and registered) but joins nothing.
        assert_eq!(lin.var_probs.len(), 4);
        assert_eq!(lin.var_tuples.len(), 4);
        assert_eq!(lin.boolean_dnf().num_vars(), 3);
    }

    #[test]
    fn unknown_relation() {
        let db = Database::new();
        let q = parse_query("q :- Nope(x)").unwrap();
        assert!(matches!(
            build_lineage(&db, &q),
            Err(LineageError::UnknownRelation(_))
        ));
    }
}
