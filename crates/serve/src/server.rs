//! The TCP server: listener, thread-per-connection loop, request
//! handling against the shared database and caches.
//!
//! One [`Server`] owns one shared [`Database`] behind an `RwLock` —
//! queries evaluate under a read lock (the engine is `Send`-safe end to
//! end, so any number run concurrently), `INGEST` takes the write lock
//! and, while holding it, merges the appended tuples into every cached
//! answer in place ([`AnswerCache::apply_deltas`]) — plus the
//! [`PlanCache`] and [`AnswerCache`] behind mutexes held only for
//! lookups/inserts/merges (and, for the plan cache, the query-level
//! enumeration on a miss), never across plan *execution*. The lock order
//! is always database before answer cache.
//!
//! Connections are `std::thread`-per-connection and detached: a
//! connection thread exits when its client disconnects or sends `QUIT`.
//! [`ServerHandle::shutdown`] stops the accept loop (new connections are
//! refused; existing ones drain on their own when their clients hang up).

use crate::cache::{AnswerCache, CacheStats, CachedPlan, CachedState, DbStamp, PlanCache};
use crate::protocol::{
    err_response, parse_request, read_frame, render_answers, write_frame, ErrorCode, Request,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use lapush_core::{
    minimal_plan_set_opts, single_plan_id, EnumOptions, PlanStore, SchemaInfo, ShapeKey,
};
use lapush_engine::{propagation_score_topk, AnswerSet, ExecOptions, IncrementalEval, Semantics};
use lapush_query::parse_query;
use lapush_storage::csv::{relation_from_text, CsvOptions};
use lapush_storage::Database;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

/// Server configuration; every field has a production-ready default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks an ephemeral port — read the real one
    /// from [`ServerHandle::addr`].
    pub bind: String,
    /// Morsel-parallelism budget forwarded to the engine for each query
    /// (`1` = strictly serial; answers are bit-identical at any value).
    pub threads: usize,
    /// Plan cache capacity, in distinct query shapes.
    pub plan_cache_cap: usize,
    /// Answer cache capacity, in distinct queries.
    pub answer_cache_cap: usize,
    /// Maximum accepted frame body size in bytes.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            threads: 1,
            plan_cache_cap: 256,
            answer_cache_cap: 4096,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// State shared by every connection thread.
struct Shared {
    db: RwLock<Database>,
    plans: Mutex<PlanCache>,
    answers: Mutex<AnswerCache>,
    threads: usize,
    max_frame: usize,
    /// Successfully evaluated `QUERY`/`TOPK` commands (cache hits
    /// included).
    queries_served: AtomicU64,
    /// Answer groups carried through the multi-plan combine by `TOPK`
    /// evaluations (cumulative; cache hits add nothing).
    topk_evaluated: AtomicU64,
    /// Answer groups pruned after the first plan's bounds pass by `TOPK`
    /// evaluations (cumulative).
    topk_pruned: AtomicU64,
    stop: AtomicBool,
}

/// A bound, not-yet-accepting server. [`Server::spawn`] starts the
/// accept loop on a background thread.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind on `config.bind` with an empty database.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_with_db(Database::new(), config)
    }

    /// Bind on `config.bind`, serving `db`.
    pub fn bind_with_db(db: Database, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.bind)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                db: RwLock::new(db),
                plans: Mutex::new(PlanCache::new(config.plan_cache_cap)),
                answers: Mutex::new(AnswerCache::new(config.answer_cache_cap)),
                threads: config.threads.max(1),
                max_frame: config.max_frame,
                queries_served: AtomicU64::new(0),
                topk_evaluated: AtomicU64::new(0),
                topk_pruned: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting connections on a background thread. Prewarms the
    /// process-wide execution pool to the configured `threads` budget so
    /// the first parallel query does not pay worker spawns.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        lapush_engine::pool::prewarm(self.shared.threads);
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let accept = thread::spawn(move || {
            for conn in self.listener.incoming() {
                if self.shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                stream.set_nodelay(true).ok();
                let shared = self.shared.clone();
                thread::spawn(move || serve_conn(stream, &shared));
            }
        });
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Handle of a running server: its address and the accept-loop thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (it doesn't on its own — this is
    /// the foreground mode of `lapush serve`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stop accepting connections and join the accept loop. Live
    /// connections drain on their own (their threads exit at client
    /// disconnect); the shared state stays alive until the last one does.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    /// A dropped handle shuts the server down — tests that spawn servers
    /// on ephemeral ports can't leak accept loops.
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-connection loop: read one frame, answer one frame, until EOF,
/// `QUIT`, or a framing error (answered with `ERR BADCMD…` then closed).
fn serve_conn(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    // Buffered writer: one `write(2)` per response frame (see `Client`).
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        match read_frame(&mut reader, shared.max_frame) {
            Ok(Some(body)) => {
                let (response, quit) = handle_request(shared, &body);
                if write_frame(&mut writer, &response).is_err() || quit {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Framing is unrecoverable mid-stream: report and close.
                let _ = write_frame(
                    &mut writer,
                    &err_response(ErrorCode::BadCommand, &format!("bad frame: {e}")),
                );
                return;
            }
            Err(_) => return,
        }
    }
}

/// Dispatch one request body; returns the response body and whether the
/// connection should close.
fn handle_request(shared: &Shared, body: &str) -> (String, bool) {
    let request = match parse_request(body) {
        Ok(r) => r,
        Err((code, msg)) => return (err_response(code, &msg), false),
    };
    match request {
        Request::Ping => ("OK pong".into(), false),
        Request::Quit => ("OK bye".into(), true),
        Request::Stats => (render_stats(shared), false),
        Request::Query { text } => (run_query(shared, &text), false),
        Request::Topk { k, text } => (run_topk(shared, k, &text), false),
        Request::Ingest { relation, rows } => (run_ingest(shared, &relation, &rows), false),
    }
}

/// `QUERY`: propagation score under Optimizations 1+2, served from the
/// answer cache when the database hasn't grown since, with plans from
/// the shape-keyed plan cache.
fn run_query(shared: &Shared, text: &str) -> String {
    let q = match parse_query(text) {
        Ok(q) => q,
        Err(e) => return err_response(ErrorCode::Parse, &e.to_string()),
    };
    // Canonical text: parse-then-display normalizes whitespace, so
    // differently-spaced spellings of one query share a cache entry.
    let key = q.display();

    // Hold the database read lock across stamp + evaluation so an
    // interleaved INGEST can't produce an answer stamped fresher than it
    // is. Readers don't block each other; queries still run concurrently.
    let db = shared.db.read().unwrap_or_else(|e| e.into_inner());
    let stamp = DbStamp::of(&db);
    if let Some(ans) = shared
        .answers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .lookup(&key, stamp)
    {
        shared.queries_served.fetch_add(1, Ordering::SeqCst);
        return render_answers(&ans);
    }

    let schema = SchemaInfo::from_query(&q);
    let shape_key = ShapeKey::of_query(&q, &schema, EnumOptions::default());
    let plan = shared
        .plans
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert_with(shape_key, || {
            let mut store = PlanStore::new();
            let root = single_plan_id(&mut store, &q, &schema, EnumOptions::default());
            CachedPlan { store, root }
        });

    let exec = ExecOptions {
        semantics: Semantics::Probabilistic,
        reuse_views: true,
        threads: shared.threads,
    };
    // Capture-evaluate: bit-identical answers to plain evaluation, plus
    // the per-node views that let `INGEST` advance this entry in place
    // instead of invalidating it.
    let eval =
        match IncrementalEval::new(&db, &q, &plan.store, std::slice::from_ref(&plan.root), exec) {
            Ok(eval) => eval,
            Err(e) => return err_response(ErrorCode::Exec, &e.to_string()),
        };
    let ans = Arc::new(eval.answers().clone());
    shared
        .answers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            key,
            stamp,
            ans.clone(),
            Some(CachedState {
                query: q,
                plan,
                eval,
            }),
        );
    shared.queries_served.fetch_add(1, Ordering::SeqCst);
    render_answers(&ans)
}

/// `TOPK`: the `k` best answers by propagation score, evaluated over the
/// full minimal plan set through the engine's anytime top-k driver
/// (bound-propagation pruning before the multi-plan min-combine; the
/// response is bit-identical to the first `k` lines of `QUERY`). Results
/// are answer-cached under a `TOPK <k> `-prefixed key, but **without**
/// incremental state: a pruned evaluation has no full per-node views to
/// maintain, so the next `INGEST` drops the entry — recorded in
/// `delta.fallbacks` — and the next `TOPK` re-evaluates from scratch.
fn run_topk(shared: &Shared, k: usize, text: &str) -> String {
    let q = match parse_query(text) {
        Ok(q) => q,
        Err(e) => return err_response(ErrorCode::Parse, &e.to_string()),
    };
    let key = format!("TOPK {k} {}", q.display());

    let db = shared.db.read().unwrap_or_else(|e| e.into_inner());
    let stamp = DbStamp::of(&db);
    if let Some(ans) = shared
        .answers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .lookup(&key, stamp)
    {
        shared.queries_served.fetch_add(1, Ordering::SeqCst);
        return render_answers(&ans);
    }

    // The plan cache holds single-plan entries (Optimizations 1+2); the
    // top-k driver needs the whole minimal plan set, so enumerate it here
    // — enumeration is query-shape work, far cheaper than evaluation.
    let schema = SchemaInfo::from_query(&q);
    let set = minimal_plan_set_opts(&q, &schema, EnumOptions::default());
    let exec = ExecOptions {
        semantics: Semantics::Probabilistic,
        reuse_views: true,
        threads: shared.threads,
    };
    let res = match propagation_score_topk(&db, &q, &set.store, &set.roots, k, exec) {
        Ok(r) => r,
        Err(e) => return err_response(ErrorCode::Exec, &e.to_string()),
    };
    shared
        .topk_evaluated
        .fetch_add(res.stats.evaluated, Ordering::SeqCst);
    shared
        .topk_pruned
        .fetch_add(res.stats.pruned, Ordering::SeqCst);
    let ans = Arc::new(AnswerSet {
        vars: q.head().to_vec(),
        rows: res.ranked.into_iter().collect(),
    });
    shared
        .answers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, stamp, ans.clone(), None);
    shared.queries_served.fetch_add(1, Ordering::SeqCst);
    render_answers(&ans)
}

/// `INGEST`: append CSV rows (last column = probability) to a relation,
/// creating it when new, then merge the appended tuples into every cached
/// answer in place ([`AnswerCache::apply_deltas`]) while still holding
/// the database write lock — surviving entries come out re-stamped fresh,
/// so interleaved queries keep hitting the cache. Entries the delta
/// algebra cannot maintain (an in-place probability raise from a
/// duplicate insert) are dropped and recomputed on their next lookup; if
/// an append fails partway, the cache is left stale and ordinary stamp
/// invalidation takes over.
fn run_ingest(shared: &Shared, relation: &str, rows: &str) -> String {
    let parsed = match relation_from_text(relation, rows, CsvOptions::default()) {
        Ok(rel) => rel,
        Err(e) => return err_response(ErrorCode::Ingest, &e.to_string()),
    };
    let mut db = shared.db.write().unwrap_or_else(|e| e.into_inner());
    let appended = parsed.len();
    let total = match db.rel_id(relation) {
        Ok(id) => {
            let existing = db.relation_mut(id);
            if existing.arity() != parsed.arity() {
                return err_response(
                    ErrorCode::Ingest,
                    &format!(
                        "arity mismatch: {relation} has arity {}, rows have {}",
                        existing.arity(),
                        parsed.arity()
                    ),
                );
            }
            for (_, row, prob) in parsed.iter() {
                if let Err(e) = existing.push(row.into(), prob) {
                    return err_response(ErrorCode::Ingest, &e.to_string());
                }
            }
            existing.len()
        }
        Err(_) => {
            let len = parsed.len();
            if let Err(e) = db.add_relation(parsed) {
                return err_response(ErrorCode::Ingest, &e.to_string());
            }
            len
        }
    };
    let stamp = DbStamp::of(&db);
    shared
        .answers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .apply_deltas(&db, stamp);
    format!("OK ingested {appended} tuples into {relation} (total {total})")
}

/// `STATS`: deterministic counters only (no clocks, no timings), so
/// scripted sessions can diff the output exactly.
fn render_stats(shared: &Shared) -> String {
    let (relations, tuples, cells) = {
        let db = shared.db.read().unwrap_or_else(|e| e.into_inner());
        let stamp = DbStamp::of(&db);
        (stamp.relations, db.tuple_count() as u64, stamp.cells)
    };
    let (plan_stats, plan_len) = {
        let plans = shared.plans.lock().unwrap_or_else(|e| e.into_inner());
        (plans.stats(), plans.len())
    };
    let (ans_stats, ans_len, delta) = {
        let answers = shared.answers.lock().unwrap_or_else(|e| e.into_inner());
        (answers.stats(), answers.len(), answers.delta_stats())
    };
    let cache_lines = |name: &str, s: CacheStats, len: usize| {
        format!(
            "{name}.len={len}\n{name}.hits={}\n{name}.misses={}\n{name}.evictions={}\n{name}.invalidations={}",
            s.hits, s.misses, s.evictions, s.invalidations
        )
    };
    // Execution-pool counters are process-wide (shared with any other
    // server or engine call in this process) and cumulative since process
    // start. `scopes`/`tasks` are workload-determined; `inline`/`steals`
    // depend on scheduling and are informational only.
    let pool = lapush_engine::pool::counters();
    // `kernels.path` is a string value, not a counter — `parse_stats`
    // skips it by design. Deterministic per machine/environment; scripted
    // sessions that byte-diff STATS pin it with `LAPUSH_KERNELS`.
    format!(
        "OK stats\nproto.version={PROTOCOL_VERSION}\nqueries.served={}\ndb.relations={relations}\ndb.tuples={tuples}\ndb.cells={cells}\n{}\n{}\ndelta.batches={}\ndelta.rows={}\ndelta.fallbacks={}\ntopk.evaluated={}\ntopk.pruned={}\npool.scopes={}\npool.tasks={}\npool.inline={}\npool.steals={}\nkernels.path={}",
        shared.queries_served.load(Ordering::SeqCst),
        cache_lines("plan_cache", plan_stats, plan_len),
        cache_lines("answer_cache", ans_stats, ans_len),
        delta.batches,
        delta.rows,
        delta.fallbacks,
        shared.topk_evaluated.load(Ordering::SeqCst),
        shared.topk_pruned.load(Ordering::SeqCst),
        pool.scopes,
        pool.tasks,
        pool.inline,
        pool.steals,
        lapush_engine::kernels::active().name(),
    )
}

/// Parse the counter lines of a `STATS` response body into `(key, value)`
/// pairs — the client-side convenience the tests and benches use.
pub fn parse_stats(body: &str) -> Vec<(String, u64)> {
    body.lines()
        .filter_map(|line| {
            let (k, v) = line.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

/// Value of one `STATS` counter, if present.
pub fn stat(body: &str, key: &str) -> Option<u64> {
    parse_stats(body)
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}
