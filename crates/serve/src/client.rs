//! A minimal blocking client for the wire protocol — what the `lapush
//! client` CLI subcommand, the integration tests, and the `fig_serve`
//! bench drive the server with.

use crate::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `lapush serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    // Buffered so each frame leaves in one `write(2)` — combined with
    // TCP_NODELAY this keeps request latency free of Nagle/delayed-ACK
    // stalls on the ~tens-of-bytes frames the protocol mostly carries.
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connect once.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connect with retries `delay` apart — for scripts that race a
    /// server still binding its listener.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: u32,
        delay: Duration,
    ) -> io::Result<Client> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(delay);
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    /// Send one request body and read the matching response body.
    /// The server closing the stream instead of answering is an
    /// [`io::ErrorKind::UnexpectedEof`] error.
    pub fn request(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.writer, body)?;
        read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}
