//! A minimal blocking client for the wire protocol — what the `lapush
//! client` CLI subcommand, the integration tests, and the `fig_serve`
//! bench drive the server with.

use crate::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `lapush serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    // Buffered so each frame leaves in one `write(2)` — combined with
    // TCP_NODELAY this keeps request latency free of Nagle/delayed-ACK
    // stalls on the ~tens-of-bytes frames the protocol mostly carries.
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connect once.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connect with retries spaced by bounded exponential backoff — for
    /// scripts that race a server still binding its listener. The wait
    /// after attempt `i` is `base · 2ⁱ`, capped at
    /// [`Client::BACKOFF_CAP`]; see [`Client::backoff_delay`] for the
    /// exact (deterministic) schedule.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: u32,
        base: Duration,
    ) -> io::Result<Client> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Client::backoff_delay(base, attempt));
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    /// Ceiling of the retry backoff: no single wait exceeds two seconds,
    /// so a bounded `attempts` budget keeps a bounded worst-case total.
    pub const BACKOFF_CAP: Duration = Duration::from_secs(2);

    /// Wait before retry number `attempt + 1` (0-based): `base · 2ⁱ`,
    /// saturating at [`Client::BACKOFF_CAP`]. Pure and deterministic —
    /// no jitter — so scripted sessions and tests can reason about the
    /// exact schedule.
    pub fn backoff_delay(base: Duration, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(31);
        base.saturating_mul(factor).min(Client::BACKOFF_CAP)
    }

    /// Send one request body and read the matching response body.
    /// The server closing the stream instead of answering is an
    /// [`io::ErrorKind::UnexpectedEof`] error.
    pub fn request(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.writer, body)?;
        read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let base = Duration::from_millis(25);
        let waits: Vec<Duration> = (0..8).map(|i| Client::backoff_delay(base, i)).collect();
        assert_eq!(waits[0], Duration::from_millis(25));
        assert_eq!(waits[1], Duration::from_millis(50));
        assert_eq!(waits[2], Duration::from_millis(100));
        assert_eq!(waits[6], Duration::from_millis(1600));
        // 25ms · 2⁷ = 3200ms caps at 2s, as does everything after.
        assert_eq!(waits[7], Client::BACKOFF_CAP);
        assert_eq!(Client::backoff_delay(base, 60), Client::BACKOFF_CAP);
        // Monotone non-decreasing schedule.
        assert!(waits.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn backoff_handles_degenerate_bases() {
        // A zero base never sleeps; a huge base is clamped immediately.
        assert_eq!(Client::backoff_delay(Duration::ZERO, 5), Duration::ZERO);
        assert_eq!(
            Client::backoff_delay(Duration::from_secs(60), 0),
            Client::BACKOFF_CAP
        );
    }
}
