//! The server's two caches and their invalidation discipline.
//!
//! **Plan cache** — keyed by [`ShapeKey`]: everything plan enumeration
//! depends on (query shape, schema FDs, refinement toggles) and nothing
//! it doesn't. Data never invalidates it: plans reference atoms by index
//! and are independent of relation contents, so entries live until
//! evicted. The hash-consed [`PlanStore`] makes a hit near-free — the
//! server reuses the interned DAG verbatim.
//!
//! **Answer cache** — keyed by the query's canonical display text and
//! stamped with the [`DbStamp`] (relation, cell, and probability-epoch
//! counts) the answer was computed against. Relations are append-only —
//! tuples are never removed — and the epoch component covers the one kind
//! of in-place rewrite that exists (a duplicate insert raising a tuple's
//! probability), so "the stamp still matches" is a *complete* freshness
//! check (the cell half is the same argument that lets the storage codec
//! reuse encoded column prefixes). A lookup under a newer stamp drops the
//! stale entry and counts an invalidation — but entries rarely go stale:
//! each one carries the [`IncrementalEval`] state it was computed with,
//! and [`AnswerCache::apply_deltas`] (run by `INGEST` under the database
//! write lock) merges the appended tuples into the cached answers in
//! place, re-stamping them fresh. Only batches the delta algebra cannot
//! absorb (an in-place probability mutation) drop the entry and force the
//! next lookup to recompute; the `delta.*` counters in `STATS` report
//! both paths.
//!
//! Both caches evict least-recently-used entries beyond a fixed capacity
//! and expose their counters through [`CacheStats`] for the `STATS`
//! command. All counters are deterministic functions of the request
//! history (no clocks), which is what lets the CI smoke script and the
//! `fig_serve` bench gate them exactly.

use lapush_core::{PlanId, PlanStore, ShapeKey};
use lapush_engine::{AnswerSet, DeltaOutcome, IncrementalEval};
use lapush_query::Query;
use lapush_storage::{Database, FxHashMap};
use std::sync::Arc;

/// Hit/miss/eviction counters of one cache (see the `STATS` command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes invalidated entries).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped because their database stamp went stale
    /// (always 0 for the plan cache — plans don't depend on data).
    pub invalidations: u64,
}

/// A cached enumeration result: the interned DAG plus the root to
/// evaluate (the single plan of Optimization 1, `min` pushed down).
#[derive(Debug)]
pub struct CachedPlan {
    /// Arena holding every node of the plan.
    pub store: PlanStore,
    /// Root id of the single plan.
    pub root: PlanId,
}

/// LRU bookkeeping shared by both caches: entries carry the tick of
/// their last use; eviction removes the smallest tick.
fn evict_lru<K: Clone + Eq + std::hash::Hash, V>(map: &mut FxHashMap<K, (u64, V)>) {
    if let Some(key) = map
        .iter()
        .min_by_key(|(_, (tick, _))| *tick)
        .map(|(k, _)| k.clone())
    {
        map.remove(&key);
    }
}

/// Multi-query plan cache: [`ShapeKey`] → [`CachedPlan`].
#[derive(Debug)]
pub struct PlanCache {
    cap: usize,
    tick: u64,
    map: FxHashMap<ShapeKey, (u64, Arc<CachedPlan>)>,
    stats: CacheStats,
}

impl PlanCache {
    /// Cache holding at most `cap` shapes (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            tick: 0,
            map: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Fetch the plan for `key`, building and inserting it on a miss.
    ///
    /// The build runs under the caller's lock on the whole cache — plan
    /// enumeration is query-level work (independent of database size), so
    /// serializing misses keeps hit/miss counts deterministic under
    /// concurrency without measurably throttling the server.
    pub fn get_or_insert_with(
        &mut self,
        key: ShapeKey,
        build: impl FnOnce() -> CachedPlan,
    ) -> Arc<CachedPlan> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((last, plan)) = self.map.get_mut(&key) {
            *last = tick;
            self.stats.hits += 1;
            return plan.clone();
        }
        self.stats.misses += 1;
        if self.map.len() >= self.cap {
            evict_lru(&mut self.map);
            self.stats.evictions += 1;
        }
        let plan = Arc::new(build());
        self.map.insert(key, (tick, plan.clone()));
        plan
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Freshness stamp of a database: relation count, total cell count
/// (values and the probability column), and total probability epoch.
/// Relations are append-only, so any ingest strictly grows the cell
/// count; the one in-place mutation that exists — a duplicate insert
/// raising a tuple's probability — bumps a relation's
/// [`prob_epoch`](lapush_storage::Relation::prob_epoch) instead. Any
/// change therefore strictly grows the stamp and `stamp equality ⇒
/// identical contents since the answer was computed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStamp {
    /// Number of relations.
    pub relations: u64,
    /// Total cells: `Σ len × (arity + 1)` over all relations.
    pub cells: u64,
    /// Total in-place probability mutations: `Σ prob_epoch`.
    pub epochs: u64,
}

impl DbStamp {
    /// Stamp of a database's current contents.
    pub fn of(db: &Database) -> Self {
        let mut cells = 0;
        let mut epochs = 0;
        for (_, r) in db.relations() {
            cells += (r.len() * (r.arity() + 1)) as u64;
            epochs += r.prob_epoch();
        }
        DbStamp {
            relations: db.relation_count() as u64,
            cells,
            epochs,
        }
    }
}

/// Cumulative incremental-maintenance counters (the `delta.*` lines of
/// `STATS`). All deterministic functions of the request history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Cached answers advanced in place by an ingest batch (one count per
    /// ingest × surviving cached entry, whether or not any answer row
    /// changed).
    pub batches: u64,
    /// Answer tuples inserted or re-scored by those merges.
    pub rows: u64,
    /// Cached answers dropped because their state could not absorb a
    /// batch (an in-place probability mutation, or an evaluation error).
    pub fallbacks: u64,
}

/// The incremental-evaluation state behind one cached answer: the parsed
/// query, the cached plan it was evaluated with, and the captured
/// per-node views ([`IncrementalEval`]).
pub struct CachedState {
    /// Parsed query (drives apply-time scan filtering and answer
    /// decoding).
    pub query: Query,
    /// Plan DAG the state was captured against.
    pub plan: Arc<CachedPlan>,
    /// Captured views and maintained answers.
    pub eval: IncrementalEval,
}

struct Entry {
    stamp: DbStamp,
    answers: Arc<AnswerSet>,
    /// `None` entries (inserted without state) cannot be maintained and
    /// are dropped — counted as fallbacks — on the next ingest.
    state: Option<CachedState>,
}

/// Answer/score cache: canonical query text → scored answers, stamped
/// with the database state they were computed against and carrying the
/// incremental state that lets [`AnswerCache::apply_deltas`] keep them
/// fresh across ingests.
pub struct AnswerCache {
    cap: usize,
    tick: u64,
    map: FxHashMap<String, (u64, Entry)>,
    stats: CacheStats,
    delta: DeltaStats,
}

impl AnswerCache {
    /// Cache holding at most `cap` answers (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        AnswerCache {
            cap: cap.max(1),
            tick: 0,
            map: FxHashMap::default(),
            stats: CacheStats::default(),
            delta: DeltaStats::default(),
        }
    }

    /// Look up `key` under the current database stamp. A stale entry
    /// (stamp mismatch) is dropped, counted as an invalidation, and
    /// reported as a miss — the caller recomputes and re-inserts.
    pub fn lookup(&mut self, key: &str, stamp: DbStamp) -> Option<Arc<AnswerSet>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((last, entry)) if entry.stamp == stamp => {
                *last = tick;
                self.stats.hits += 1;
                Some(entry.answers.clone())
            }
            Some(_) => {
                self.map.remove(key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly computed answer, evicting the least-recently-used
    /// entry when at capacity. `state` is the incremental-evaluation
    /// state that will keep the entry fresh across ingests; entries
    /// inserted without one are dropped on the next ingest instead.
    pub fn insert(
        &mut self,
        key: String,
        stamp: DbStamp,
        ans: Arc<AnswerSet>,
        state: Option<CachedState>,
    ) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            evict_lru(&mut self.map);
            self.stats.evictions += 1;
        }
        let entry = Entry {
            stamp,
            answers: ans,
            state,
        };
        self.map.insert(key, (self.tick, entry));
    }

    /// Merge everything appended to `db` since each entry's stamp into
    /// the cached answers, in place. Callers (the server's `INGEST`
    /// handler) invoke this under the database *write* lock, so the
    /// stamps move atomically with the data. Entries whose state cannot
    /// absorb the growth — an in-place probability mutation, an
    /// evaluation error, or a stateless entry — are dropped and counted
    /// in [`DeltaStats::fallbacks`]; every surviving entry is re-stamped
    /// to `stamp` (fresh), so mixed query/ingest workloads keep hitting
    /// the cache instead of recomputing.
    pub fn apply_deltas(&mut self, db: &Database, stamp: DbStamp) {
        let keys: Vec<String> = self.map.keys().cloned().collect();
        for key in keys {
            let (_, entry) = self.map.get_mut(&key).expect("key just listed");
            let Some(state) = entry.state.as_mut() else {
                self.map.remove(&key);
                self.delta.fallbacks += 1;
                continue;
            };
            match state.eval.apply_deltas(db, &state.query, &state.plan.store) {
                Ok(DeltaOutcome::Unchanged) => {
                    entry.stamp = stamp;
                    self.delta.batches += 1;
                }
                Ok(DeltaOutcome::Updated { rows }) => {
                    entry.answers = Arc::new(state.eval.answers().clone());
                    entry.stamp = stamp;
                    self.delta.batches += 1;
                    self.delta.rows += rows as u64;
                }
                Ok(DeltaOutcome::Fallback) | Err(_) => {
                    self.map.remove(&key);
                    self.delta.fallbacks += 1;
                }
            }
        }
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Incremental-maintenance counter snapshot.
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lapush_core::{single_plan_id, EnumOptions, SchemaInfo};
    use lapush_query::parse_query;
    use lapush_storage::Value;

    fn plan_of(text: &str) -> (ShapeKey, CachedPlan) {
        let q = parse_query(text).unwrap();
        let schema = SchemaInfo::from_query(&q);
        let key = ShapeKey::of_query(&q, &schema, EnumOptions::default());
        let mut store = PlanStore::new();
        let root = single_plan_id(&mut store, &q, &schema, EnumOptions::default());
        (key, CachedPlan { store, root })
    }

    #[test]
    fn plan_cache_hits_on_equal_shapes_and_evicts_lru() {
        let mut cache = PlanCache::new(2);
        let (k1, p1) = plan_of("q :- R(x), S(x, y), T(y)");
        let (k1b, _) = plan_of("q :- A(u), B(u, w), C(w)"); // same shape
        let (k2, p2) = plan_of("q(x) :- R(x), S(x, y), T(y)");
        let (k3, p3) = plan_of("q :- R(x), S(x)");
        assert_eq!(k1, k1b);
        let a = cache.get_or_insert_with(k1, || p1);
        let b = cache.get_or_insert_with(k1b, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        cache.get_or_insert_with(k2.clone(), || p2);
        // k1 is now the LRU entry (k2 was used last); inserting k3 evicts it.
        cache.get_or_insert_with(k3, || p3);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        // k2 survived the eviction.
        cache.get_or_insert_with(k2, || unreachable!("k2 must still be cached"));
    }

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let r = db.create_relation("R", 1).unwrap();
        db.relation_mut(r)
            .push(Box::new([Value::Int(1)]), 0.5)
            .unwrap();
        db
    }

    #[test]
    fn answer_cache_invalidates_on_ingest() {
        let mut db = tiny_db();
        let mut cache = AnswerCache::new(8);
        let ans = Arc::new(AnswerSet {
            vars: vec![],
            rows: FxHashMap::default(),
        });
        let stamp = DbStamp::of(&db);
        assert!(cache.lookup("q", stamp).is_none());
        cache.insert("q".into(), stamp, ans.clone(), None);
        assert!(cache.lookup("q", stamp).is_some());
        // Append-only growth changes the stamp and invalidates.
        db.relation_mut(0)
            .push(Box::new([Value::Int(2)]), 0.5)
            .unwrap();
        let grown = DbStamp::of(&db);
        assert_ne!(stamp, grown);
        assert!(cache.lookup("q", grown).is_none());
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn answer_cache_evicts_at_capacity() {
        let db = tiny_db();
        let stamp = DbStamp::of(&db);
        let ans = Arc::new(AnswerSet {
            vars: vec![],
            rows: FxHashMap::default(),
        });
        let mut cache = AnswerCache::new(2);
        for key in ["a", "b", "c"] {
            cache.insert(key.into(), stamp, ans.clone(), None);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "a" was least recently used.
        assert!(cache.lookup("a", stamp).is_none());
        assert!(cache.lookup("c", stamp).is_some());
    }

    #[test]
    fn db_stamp_counts_cells_including_probabilities() {
        let db = tiny_db();
        let stamp = DbStamp::of(&db);
        assert_eq!(stamp.relations, 1);
        assert_eq!(stamp.cells, 2); // 1 row × (arity 1 + prob)
        assert_eq!(stamp.epochs, 0);
    }

    #[test]
    fn db_stamp_detects_in_place_probability_mutations() {
        // A duplicate insert that raises a probability leaves the cell
        // count alone; only the epoch component catches it.
        let mut db = tiny_db();
        let before = DbStamp::of(&db);
        db.relation_mut(0)
            .push(Box::new([Value::Int(1)]), 0.9)
            .unwrap();
        let after = DbStamp::of(&db);
        assert_eq!(before.cells, after.cells);
        assert_ne!(before, after);
        assert_eq!(after.epochs, 1);
    }

    fn state_for(db: &Database, text: &str) -> (String, CachedState) {
        let q = parse_query(text).unwrap();
        let key = q.display();
        let schema = SchemaInfo::from_query(&q);
        let mut store = PlanStore::new();
        let root = single_plan_id(&mut store, &q, &schema, EnumOptions::default());
        let plan = Arc::new(CachedPlan { store, root });
        let eval = IncrementalEval::new(
            db,
            &q,
            &plan.store,
            std::slice::from_ref(&plan.root),
            lapush_engine::ExecOptions::default(),
        )
        .unwrap();
        (
            key,
            CachedState {
                query: q,
                plan,
                eval,
            },
        )
    }

    #[test]
    fn apply_deltas_keeps_entries_fresh_across_ingest() {
        let mut db = tiny_db();
        let mut cache = AnswerCache::new(8);
        let (key, state) = state_for(&db, "q(x) :- R(x)");
        let ans = Arc::new(state.eval.answers().clone());
        cache.insert(key.clone(), DbStamp::of(&db), ans, Some(state));
        db.relation_mut(0)
            .push(Box::new([Value::Int(2)]), 0.25)
            .unwrap();
        let grown = DbStamp::of(&db);
        cache.apply_deltas(&db, grown);
        // The entry was merged and re-stamped: the lookup hits (no
        // invalidation) and sees the new answer.
        let got = cache.lookup(&key, grown).expect("merged entry must hit");
        assert_eq!(got.len(), 2);
        assert_eq!(got.score_of(&[Value::Int(2)]), 0.25);
        let d = cache.delta_stats();
        assert_eq!((d.batches, d.rows, d.fallbacks), (1, 1, 0));
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn apply_deltas_drops_what_it_cannot_maintain() {
        let mut db = tiny_db();
        let mut cache = AnswerCache::new(8);
        let empty = Arc::new(AnswerSet {
            vars: vec![],
            rows: FxHashMap::default(),
        });
        let stamp = DbStamp::of(&db);
        // A stateless entry is dropped on the next ingest.
        cache.insert("stateless".into(), stamp, empty, None);
        // A stateful entry survives growth but not an in-place mutation.
        let (key, state) = state_for(&db, "q(x) :- R(x)");
        let ans = Arc::new(state.eval.answers().clone());
        cache.insert(key.clone(), stamp, ans, Some(state));
        db.relation_mut(0)
            .push(Box::new([Value::Int(1)]), 0.9)
            .unwrap();
        cache.apply_deltas(&db, DbStamp::of(&db));
        assert_eq!(cache.len(), 0);
        let d = cache.delta_stats();
        assert_eq!((d.batches, d.rows, d.fallbacks), (0, 0, 2));
    }
}
