//! The server's two caches and their invalidation discipline.
//!
//! **Plan cache** — keyed by [`ShapeKey`]: everything plan enumeration
//! depends on (query shape, schema FDs, refinement toggles) and nothing
//! it doesn't. Data never invalidates it: plans reference atoms by index
//! and are independent of relation contents, so entries live until
//! evicted. The hash-consed [`PlanStore`] makes a hit near-free — the
//! server reuses the interned DAG verbatim.
//!
//! **Answer cache** — keyed by the query's canonical display text and
//! stamped with the [`DbStamp`] (relation and cell counts) the answer was
//! computed against. Relations are append-only — tuples are never removed
//! or rewritten in place — so "the counts still match" is a *complete*
//! freshness check (the same argument that lets the storage codec reuse
//! encoded column prefixes). A lookup under a newer stamp drops the stale
//! entry and counts an invalidation.
//!
//! Both caches evict least-recently-used entries beyond a fixed capacity
//! and expose their counters through [`CacheStats`] for the `STATS`
//! command. All counters are deterministic functions of the request
//! history (no clocks), which is what lets the CI smoke script and the
//! `fig_serve` bench gate them exactly.

use lapush_core::{PlanId, PlanStore, ShapeKey};
use lapush_engine::AnswerSet;
use lapush_storage::{Database, FxHashMap};
use std::sync::Arc;

/// Hit/miss/eviction counters of one cache (see the `STATS` command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes invalidated entries).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped because their database stamp went stale
    /// (always 0 for the plan cache — plans don't depend on data).
    pub invalidations: u64,
}

/// A cached enumeration result: the interned DAG plus the root to
/// evaluate (the single plan of Optimization 1, `min` pushed down).
#[derive(Debug)]
pub struct CachedPlan {
    /// Arena holding every node of the plan.
    pub store: PlanStore,
    /// Root id of the single plan.
    pub root: PlanId,
}

/// LRU bookkeeping shared by both caches: entries carry the tick of
/// their last use; eviction removes the smallest tick.
fn evict_lru<K: Clone + Eq + std::hash::Hash, V>(map: &mut FxHashMap<K, (u64, V)>) {
    if let Some(key) = map
        .iter()
        .min_by_key(|(_, (tick, _))| *tick)
        .map(|(k, _)| k.clone())
    {
        map.remove(&key);
    }
}

/// Multi-query plan cache: [`ShapeKey`] → [`CachedPlan`].
#[derive(Debug)]
pub struct PlanCache {
    cap: usize,
    tick: u64,
    map: FxHashMap<ShapeKey, (u64, Arc<CachedPlan>)>,
    stats: CacheStats,
}

impl PlanCache {
    /// Cache holding at most `cap` shapes (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            tick: 0,
            map: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Fetch the plan for `key`, building and inserting it on a miss.
    ///
    /// The build runs under the caller's lock on the whole cache — plan
    /// enumeration is query-level work (independent of database size), so
    /// serializing misses keeps hit/miss counts deterministic under
    /// concurrency without measurably throttling the server.
    pub fn get_or_insert_with(
        &mut self,
        key: ShapeKey,
        build: impl FnOnce() -> CachedPlan,
    ) -> Arc<CachedPlan> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((last, plan)) = self.map.get_mut(&key) {
            *last = tick;
            self.stats.hits += 1;
            return plan.clone();
        }
        self.stats.misses += 1;
        if self.map.len() >= self.cap {
            evict_lru(&mut self.map);
            self.stats.evictions += 1;
        }
        let plan = Arc::new(build());
        self.map.insert(key, (tick, plan.clone()));
        plan
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Freshness stamp of a database: relation count plus total cell count
/// (values and the probability column). Relations are append-only, so
/// any ingest strictly grows the stamp and `stamp equality ⇒ identical
/// contents since the answer was computed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStamp {
    /// Number of relations.
    pub relations: u64,
    /// Total cells: `Σ len × (arity + 1)` over all relations.
    pub cells: u64,
}

impl DbStamp {
    /// Stamp of a database's current contents.
    pub fn of(db: &Database) -> Self {
        DbStamp {
            relations: db.relation_count() as u64,
            cells: db
                .relations()
                .map(|(_, r)| (r.len() * (r.arity() + 1)) as u64)
                .sum(),
        }
    }
}

/// Answer/score cache: canonical query text → scored answers, stamped
/// with the database state they were computed against.
#[derive(Debug)]
pub struct AnswerCache {
    cap: usize,
    tick: u64,
    map: FxHashMap<String, (u64, (DbStamp, Arc<AnswerSet>))>,
    stats: CacheStats,
}

impl AnswerCache {
    /// Cache holding at most `cap` answers (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        AnswerCache {
            cap: cap.max(1),
            tick: 0,
            map: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Look up `key` under the current database stamp. A stale entry
    /// (stamp mismatch) is dropped, counted as an invalidation, and
    /// reported as a miss — the caller recomputes and re-inserts.
    pub fn lookup(&mut self, key: &str, stamp: DbStamp) -> Option<Arc<AnswerSet>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((last, (cached_stamp, ans))) if *cached_stamp == stamp => {
                *last = tick;
                self.stats.hits += 1;
                Some(ans.clone())
            }
            Some(_) => {
                self.map.remove(key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly computed answer, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: String, stamp: DbStamp, ans: Arc<AnswerSet>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            evict_lru(&mut self.map);
            self.stats.evictions += 1;
        }
        self.map.insert(key, (self.tick, (stamp, ans)));
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lapush_core::{single_plan_id, EnumOptions, SchemaInfo};
    use lapush_query::parse_query;
    use lapush_storage::Value;

    fn plan_of(text: &str) -> (ShapeKey, CachedPlan) {
        let q = parse_query(text).unwrap();
        let schema = SchemaInfo::from_query(&q);
        let key = ShapeKey::of_query(&q, &schema, EnumOptions::default());
        let mut store = PlanStore::new();
        let root = single_plan_id(&mut store, &q, &schema, EnumOptions::default());
        (key, CachedPlan { store, root })
    }

    #[test]
    fn plan_cache_hits_on_equal_shapes_and_evicts_lru() {
        let mut cache = PlanCache::new(2);
        let (k1, p1) = plan_of("q :- R(x), S(x, y), T(y)");
        let (k1b, _) = plan_of("q :- A(u), B(u, w), C(w)"); // same shape
        let (k2, p2) = plan_of("q(x) :- R(x), S(x, y), T(y)");
        let (k3, p3) = plan_of("q :- R(x), S(x)");
        assert_eq!(k1, k1b);
        let a = cache.get_or_insert_with(k1, || p1);
        let b = cache.get_or_insert_with(k1b, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        cache.get_or_insert_with(k2.clone(), || p2);
        // k1 is now the LRU entry (k2 was used last); inserting k3 evicts it.
        cache.get_or_insert_with(k3, || p3);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        // k2 survived the eviction.
        cache.get_or_insert_with(k2, || unreachable!("k2 must still be cached"));
    }

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let r = db.create_relation("R", 1).unwrap();
        db.relation_mut(r)
            .push(Box::new([Value::Int(1)]), 0.5)
            .unwrap();
        db
    }

    #[test]
    fn answer_cache_invalidates_on_ingest() {
        let mut db = tiny_db();
        let mut cache = AnswerCache::new(8);
        let ans = Arc::new(AnswerSet {
            vars: vec![],
            rows: FxHashMap::default(),
        });
        let stamp = DbStamp::of(&db);
        assert!(cache.lookup("q", stamp).is_none());
        cache.insert("q".into(), stamp, ans.clone());
        assert!(cache.lookup("q", stamp).is_some());
        // Append-only growth changes the stamp and invalidates.
        db.relation_mut(0)
            .push(Box::new([Value::Int(2)]), 0.5)
            .unwrap();
        let grown = DbStamp::of(&db);
        assert_ne!(stamp, grown);
        assert!(cache.lookup("q", grown).is_none());
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn answer_cache_evicts_at_capacity() {
        let db = tiny_db();
        let stamp = DbStamp::of(&db);
        let ans = Arc::new(AnswerSet {
            vars: vec![],
            rows: FxHashMap::default(),
        });
        let mut cache = AnswerCache::new(2);
        for key in ["a", "b", "c"] {
            cache.insert(key.into(), stamp, ans.clone());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "a" was least recently used.
        assert!(cache.lookup("a", stamp).is_none());
        assert!(cache.lookup("c", stamp).is_some());
    }

    #[test]
    fn db_stamp_counts_cells_including_probabilities() {
        let db = tiny_db();
        let stamp = DbStamp::of(&db);
        assert_eq!(stamp.relations, 1);
        assert_eq!(stamp.cells, 2); // 1 row × (arity 1 + prob)
    }
}
