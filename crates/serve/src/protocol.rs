//! Wire protocol v1: framing, request grammar, response rendering.
//!
//! Both directions speak **length-prefixed UTF-8 frames**:
//!
//! ```text
//! <decimal byte length of body>\n<body>
//! ```
//!
//! The header is the body's byte length in ASCII decimal followed by one
//! `\n`; the body is exactly that many bytes of UTF-8 text (which may
//! itself contain newlines — multi-line commands like `INGEST` and
//! multi-line responses like `QUERY` answers need no escaping). One
//! request frame yields exactly one response frame, in order.
//!
//! A request body's first line starts with a command word (`QUERY`,
//! `TOPK`, `INGEST`, `STATS`, `PING`, `QUIT`). A response body's first line is
//! either `OK …` or `ERR <CODE> <message>`; any further lines are
//! command-specific payload. The human-readable spec with annotated
//! example sessions lives in `docs/PROTOCOL.md`; this module is its
//! executable counterpart and must stay in sync.

use lapush_engine::AnswerSet;
use lapush_storage::Value;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Version of the wire protocol implemented by this crate; reported by
/// `STATS` as `proto.version`. Bump on any incompatible framing or
/// grammar change (see `docs/PROTOCOL.md` for the compatibility policy).
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on one frame's body size (16 MiB). Guards the server
/// against a bad length header committing it to an unbounded allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one frame: decimal length header, `\n`, body, then flush (a
/// frame is only useful to the peer once it is fully on the wire).
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    w.write_all(body.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); a malformed header, an over-`max` length, or EOF in
/// the middle of a frame is an [`io::ErrorKind::InvalidData`] error.
pub fn read_frame(r: &mut impl BufRead, max: usize) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim_end_matches('\n')
        .parse()
        .map_err(|_| invalid(format!("bad frame header {:?}", header.trim_end())))?;
    if len > max {
        return Err(invalid(format!("frame of {len} bytes exceeds cap {max}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| invalid("frame body is not UTF-8".into()))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Machine-readable error class of an `ERR` response (the token between
/// `ERR` and the message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unknown command word, or arguments that don't fit its grammar.
    BadCommand,
    /// `QUERY`: the query text did not parse as a sjfCQ.
    Parse,
    /// `QUERY`: evaluation failed (unknown relation, arity mismatch, …).
    Exec,
    /// `INGEST`: the rows were rejected (bad probability, ragged arity,
    /// arity mismatch with an existing relation, …).
    Ingest,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadCommand => "BADCMD",
            ErrorCode::Parse => "PARSE",
            ErrorCode::Exec => "EXEC",
            ErrorCode::Ingest => "INGEST",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PING` — liveness check.
    Ping,
    /// `QUERY <datalog>` — evaluate a query's propagation score.
    Query {
        /// The datalog text after the command word.
        text: String,
    },
    /// `TOPK <k> <datalog>` — rank only the `k` best answers through the
    /// engine's anytime top-k driver (bit-identical to the first `k`
    /// lines of the corresponding `QUERY` response).
    Topk {
        /// How many answers to rank (≥ 1).
        k: usize,
        /// The datalog text after the count.
        text: String,
    },
    /// `INGEST <relation>` + one CSV row per following line.
    Ingest {
        /// Target relation name.
        relation: String,
        /// The raw row lines (CSV, last column = probability).
        rows: String,
    },
    /// `STATS` — cache and database counters.
    Stats,
    /// `QUIT` — polite connection close.
    Quit,
}

/// Parse a request body. Errors are `(code, message)` pairs ready for
/// [`err_response`].
pub fn parse_request(body: &str) -> Result<Request, (ErrorCode, String)> {
    let (first, rest) = match body.split_once('\n') {
        Some((f, r)) => (f, r),
        None => (body, ""),
    };
    let first = first.trim_end_matches('\r');
    let (word, args) = match first.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (first.trim(), ""),
    };
    let bare = |req: Request| {
        if args.is_empty() && rest.trim().is_empty() {
            Ok(req)
        } else {
            Err((ErrorCode::BadCommand, format!("{word} takes no arguments")))
        }
    };
    match word {
        "PING" => bare(Request::Ping),
        "STATS" => bare(Request::Stats),
        "QUIT" => bare(Request::Quit),
        "QUERY" => {
            if args.is_empty() || !rest.trim().is_empty() {
                return Err((
                    ErrorCode::BadCommand,
                    "usage: QUERY <datalog query> (one line)".into(),
                ));
            }
            Ok(Request::Query { text: args.into() })
        }
        "TOPK" => {
            let usage = || {
                (
                    ErrorCode::BadCommand,
                    "usage: TOPK <k> <datalog query> (one line, k >= 1)".into(),
                )
            };
            if !rest.trim().is_empty() {
                return Err(usage());
            }
            let (count, text) = args.split_once(char::is_whitespace).ok_or_else(usage)?;
            let k: usize = count.parse().ok().filter(|&k| k >= 1).ok_or_else(usage)?;
            let text = text.trim();
            if text.is_empty() {
                return Err(usage());
            }
            Ok(Request::Topk {
                k,
                text: text.into(),
            })
        }
        "INGEST" => {
            if args.is_empty() || args.split_whitespace().count() != 1 {
                return Err((
                    ErrorCode::BadCommand,
                    "usage: INGEST <relation>, rows on following lines".into(),
                ));
            }
            Ok(Request::Ingest {
                relation: args.into(),
                rows: rest.into(),
            })
        }
        other => Err((
            ErrorCode::BadCommand,
            format!(
                "unknown command `{other}` (expected QUERY, TOPK, INGEST, STATS, PING, or QUIT)"
            ),
        )),
    }
}

/// Render an `ERR` response body: `ERR <CODE> <message>`, message
/// flattened to one line so the status line stays machine-parsable.
pub fn err_response(code: ErrorCode, msg: &str) -> String {
    let flat: String = msg
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {code} {}", flat.trim())
}

/// Render one answer key the way the `lapush` CLI does: values joined by
/// `", "`, the Boolean query's empty tuple as `(true)`.
pub fn render_key(key: &[Value]) -> String {
    if key.is_empty() {
        "(true)".to_string()
    } else {
        key.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Render a `QUERY` response body: `OK <n> answers`, then one
/// `<key>\t<score>` line per answer in ranked (descending-score) order.
///
/// Scores use Rust's shortest round-trip float formatting, so the wire
/// text preserves the answer's exact `f64` bits — "bit-identical to
/// direct evaluation" is checkable from the outside.
pub fn render_answers(ans: &AnswerSet) -> String {
    let mut out = format!("OK {} answers", ans.len());
    for (key, score) in ans.ranked() {
        out.push('\n');
        out.push_str(&render_key(&key));
        out.push('\t');
        out.push_str(&score.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "PING").unwrap();
        write_frame(&mut wire, "INGEST R\n1,0.5\n2,0.25").unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), "PING");
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().unwrap(),
            "INGEST R\n1,0.5\n2,0.25"
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap(), None);
    }

    #[test]
    fn oversized_and_malformed_frames_rejected() {
        let mut r = BufReader::new(&b"999\nabc"[..]);
        // Honest header, truncated body: invalid, not silent EOF.
        assert!(read_frame(&mut r, 10).is_err());
        let mut r = BufReader::new(&b"nope\nabc"[..]);
        assert!(read_frame(&mut r, 1024).is_err());
        let mut wire = Vec::new();
        write_frame(&mut wire, "QUERY too big").unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert!(read_frame(&mut r, 4).is_err());
    }

    #[test]
    fn request_grammar() {
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("STATS\n"), Ok(Request::Stats));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
        assert_eq!(
            parse_request("QUERY q(x) :- R(x), S(x, y)"),
            Ok(Request::Query {
                text: "q(x) :- R(x), S(x, y)".into()
            })
        );
        assert_eq!(
            parse_request("INGEST R\n1,0.5\n2,0.5"),
            Ok(Request::Ingest {
                relation: "R".into(),
                rows: "1,0.5\n2,0.5".into()
            })
        );
        assert_eq!(
            parse_request("TOPK 5 q(x) :- R(x), S(x, y)"),
            Ok(Request::Topk {
                k: 5,
                text: "q(x) :- R(x), S(x, y)".into()
            })
        );
        for bad in [
            "",
            "NOSUCH",
            "PING extra",
            "QUERY",
            "INGEST",
            "INGEST a b",
            "TOPK",
            "TOPK 5",
            "TOPK 0 q :- R(x)",
            "TOPK five q :- R(x)",
            "TOPK 5 q :- R(x)\nextra line",
        ] {
            assert_eq!(
                parse_request(bad).unwrap_err().0,
                ErrorCode::BadCommand,
                "{bad:?}"
            );
        }
    }

    #[test]
    fn err_responses_are_one_status_line() {
        let resp = err_response(ErrorCode::Parse, "line 1\nline 2");
        assert_eq!(resp, "ERR PARSE line 1 line 2");
        assert_eq!(resp.lines().count(), 1);
    }
}
