//! # lapush-serve — the always-on query service
//!
//! A long-running TCP server that amortizes everything *except*
//! execution across queries, turning the per-query cost profile of the
//! CLI (parse + shape analysis + plan enumeration + evaluation, every
//! time) into the profile a standing service wants (evaluation only, and
//! often not even that):
//!
//! * **one shared [`Database`](lapush_storage::Database)** behind a
//!   read/write lock — concurrent `QUERY`s evaluate under read locks
//!   (the engine is `Send`-safe end to end), `INGEST` appends under the
//!   write lock;
//! * **a plan cache** keyed by [`ShapeKey`](lapush_core::ShapeKey): plan
//!   enumeration depends only on the query's *shape*, so every
//!   same-shaped query (different constants, renamed relations, …)
//!   reuses one hash-consed plan DAG;
//! * **an answer cache** keyed by the query's canonical text and stamped
//!   with the database's relation/cell counts — relations are
//!   append-only, so count equality is a complete freshness check and
//!   ingest invalidates exactly the answers it must;
//! * **deterministic `STATS` counters** (hits, misses, evictions,
//!   invalidations — never clocks), so cache behavior is scriptable and
//!   CI-gateable.
//!
//! The wire protocol (length-prefixed text frames; `QUERY`, `INGEST`,
//! `STATS`, `PING`, `QUIT`) is specified in `docs/PROTOCOL.md`; running
//! and operating the server is covered by `docs/OPERATIONS.md`. The
//! `lapush serve` / `lapush client` CLI subcommands and the `fig_serve`
//! bench target are thin wrappers over [`Server`] and [`Client`].
//!
//! ## Example: an in-process server and one client session
//!
//! ```
//! use lapush_serve::{Client, Server, ServerConfig};
//!
//! // Bind on an ephemeral port (the default config) and start serving.
//! let handle = Server::bind(ServerConfig::default()).unwrap().spawn().unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert_eq!(client.request("PING").unwrap(), "OK pong");
//!
//! // Load two tiny relations, then ask for a propagation score.
//! client.request("INGEST R\n1,0.5").unwrap();
//! client.request("INGEST S\n1,2,0.8").unwrap();
//! let answers = client.request("QUERY q(x) :- R(x), S(x, y)").unwrap();
//! assert_eq!(answers, "OK 1 answers\n1\t0.4"); // 0.5 × 0.8
//!
//! // The same query again is an answer-cache hit, visible in STATS.
//! client.request("QUERY q(x) :- R(x), S(x, y)").unwrap();
//! let stats = client.request("STATS").unwrap();
//! assert_eq!(lapush_serve::stat(&stats, "answer_cache.hits"), Some(1));
//!
//! assert_eq!(client.request("QUIT").unwrap(), "OK bye");
//! handle.shutdown();
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{AnswerCache, CacheStats, CachedPlan, CachedState, DbStamp, DeltaStats, PlanCache};
pub use client::Client;
pub use protocol::{
    err_response, parse_request, read_frame, render_answers, render_key, write_frame, ErrorCode,
    Request, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{parse_stats, stat, Server, ServerConfig, ServerHandle};
