//! The experiment-suite spec and process driver behind `lapush bench` and
//! the `run_all` binary of `lapush-bench`.
//!
//! The suite is the single source of truth for which experiment binaries
//! exist and which variants each runs; both entry points spawn the
//! binaries as sibling processes (they are built into the same target
//! directory) and forward the scale (`--quick`/`--full`) and output
//! (`--out DIR`) flags. Each binary writes one `BENCH_<target>.json`
//! report per variant; `bench-diff` compares a directory of such reports
//! against the committed baselines under `benches/baselines/`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// One suite entry: an experiment binary plus the extra arguments of one
/// of its variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteRun {
    /// Binary name (under the same target directory as `lapush`).
    pub bin: &'static str,
    /// Variant arguments (empty for single-variant binaries).
    pub args: &'static [&'static str],
}

/// Every run of the full experiment suite, in execution order. Keep in
/// sync with the binaries under `crates/bench/src/bin/` — `run_all` and
/// `lapush bench` both iterate exactly this list.
pub const SUITE: &[SuiteRun] = &[
    SuiteRun {
        bin: "fig2_counts",
        args: &[],
    },
    SuiteRun {
        bin: "fig5_runtime",
        args: &["--family", "chain", "--k", "4"],
    },
    SuiteRun {
        bin: "fig5_runtime",
        args: &["--family", "chain", "--k", "7"],
    },
    SuiteRun {
        bin: "fig5_runtime",
        args: &["--family", "star", "--k", "2"],
    },
    SuiteRun {
        bin: "fig5d_query_complexity",
        args: &[],
    },
    SuiteRun {
        bin: "fig5_tpch",
        args: &["--param2", "red-green"],
    },
    SuiteRun {
        bin: "fig5_tpch",
        args: &["--param2", "red"],
    },
    SuiteRun {
        bin: "fig5_tpch",
        args: &["--param2", "any"],
    },
    SuiteRun {
        bin: "fig5i_ranking_quality",
        args: &[],
    },
    SuiteRun {
        bin: "fig5j_answer_prob",
        args: &[],
    },
    SuiteRun {
        bin: "fig5k_lineage_rank",
        args: &[],
    },
    SuiteRun {
        bin: "fig5l_dissociation_degree",
        args: &[],
    },
    SuiteRun {
        bin: "fig5m_tradeoff",
        args: &[],
    },
    SuiteRun {
        bin: "fig5n_scaling",
        args: &[],
    },
    SuiteRun {
        bin: "fig5o_decomposition",
        args: &[],
    },
    SuiteRun {
        bin: "fig5p_scaled_dissociation",
        args: &[],
    },
    SuiteRun {
        bin: "ablation_schema",
        args: &[],
    },
    SuiteRun {
        bin: "fig_serve",
        args: &[],
    },
    SuiteRun {
        bin: "fig_kernels",
        args: &[],
    },
    SuiteRun {
        bin: "fig_delta",
        args: &[],
    },
    SuiteRun {
        bin: "fig_topk",
        args: &[],
    },
];

/// Outcome of running the whole suite.
#[derive(Debug, Clone, Default)]
pub struct SuiteOutcome {
    /// Runs that completed successfully.
    pub succeeded: usize,
    /// Human-readable descriptions of the runs that failed (spawn errors
    /// and non-zero exits alike).
    pub failures: Vec<String>,
}

impl SuiteOutcome {
    /// Did every run succeed?
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run every suite entry as a child process, forwarding `forwarded`
/// (scale and `--out` flags) to each. Failures do not abort the suite —
/// every remaining run still executes, and all failures are reported in
/// the outcome so callers can exit non-zero at the end.
pub fn run_suite(bin_dir: &Path, forwarded: &[String]) -> SuiteOutcome {
    let mut outcome = SuiteOutcome::default();
    for run in SUITE {
        let label = if run.args.is_empty() {
            run.bin.to_string()
        } else {
            format!("{} {}", run.bin, run.args.join(" "))
        };
        println!("\n──────────────────────────────────────────────────────");
        println!("▶ {label}");
        println!("──────────────────────────────────────────────────────");
        let path = bin_dir.join(run.bin);
        match Command::new(&path).args(run.args).args(forwarded).status() {
            Ok(status) if status.success() => outcome.succeeded += 1,
            Ok(status) => {
                eprintln!("✗ {label} exited with {status}");
                outcome.failures.push(format!("{label} ({status})"));
            }
            Err(e) => {
                eprintln!(
                    "✗ failed to spawn {} ({e}); build the workspace first: \
                     cargo build --release --workspace",
                    path.display()
                );
                outcome.failures.push(format!("{label} (spawn: {e})"));
            }
        }
    }
    outcome
}

/// Directory containing the current executable — where the sibling
/// experiment binaries live after a workspace build.
pub fn current_bin_dir() -> std::io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    exe.parent()
        .map(Path::to_path_buf)
        .ok_or_else(|| std::io::Error::other("executable has no parent directory"))
}

/// Print the suite summary and return the process exit code (0 when all
/// runs succeeded, 1 otherwise).
pub fn summarize(outcome: &SuiteOutcome) -> i32 {
    println!(
        "\nsuite finished: {} succeeded, {} failed",
        outcome.succeeded,
        outcome.failures.len()
    );
    if outcome.all_ok() {
        0
    } else {
        for f in &outcome.failures {
            eprintln!("  failed: {f}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_experiment_binaries() {
        let bins: std::collections::BTreeSet<&str> = SUITE.iter().map(|r| r.bin).collect();
        assert_eq!(bins.len(), 17, "17 distinct experiment binaries");
        assert!(bins.contains("fig2_counts"));
        assert!(bins.contains("ablation_schema"));
        assert!(bins.contains("fig_serve"));
        assert!(bins.contains("fig_kernels"));
        assert!(bins.contains("fig_delta"));
        assert!(bins.contains("fig_topk"));
        // Multi-variant entries appear once per variant.
        assert_eq!(SUITE.iter().filter(|r| r.bin == "fig5_runtime").count(), 3);
        assert_eq!(SUITE.iter().filter(|r| r.bin == "fig5_tpch").count(), 3);
    }

    #[test]
    fn failed_spawns_are_collected_not_fatal() {
        let dir = std::env::temp_dir().join("lapush_no_binaries_here");
        let outcome = run_suite(&dir, &[]);
        assert_eq!(outcome.succeeded, 0);
        assert_eq!(outcome.failures.len(), SUITE.len());
        assert!(!outcome.all_ok());
        assert_eq!(summarize(&outcome), 1);
    }
}
