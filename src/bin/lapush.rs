//! `lapush` — command-line probabilistic query evaluation.
//!
//! Load a directory of CSV relations (file stem = relation name, last
//! column = tuple probability) and evaluate a conjunctive query with the
//! method of your choice:
//!
//! ```console
//! $ lapush --data ./facts --query 'q(d) :- Directed(d, m), Starred(m, a)' \
//!          --method diss
//! ```
//!
//! Methods: `diss` (propagation score, default), `bounds` (sandwich
//! [low, ρ] interval), `exact` (WMC oracle), `mc` (Monte Carlo, with
//! `--samples`), `sql` (deterministic answers), `plans` (print plans only).
//!
//! `--top-k N` (with `--method diss`) ranks only the `N` best answers
//! through the engine's anytime top-k driver: after one bounds pass over
//! the cheapest plan, answer groups that provably cannot reach the k-th
//! best lower bound are pruned before the remaining plans are evaluated.
//! The printed answers are bit-identical to the first `N` lines of the
//! exhaustive ranking.
//!
//! `--threads N` (default 1) turns on the engine's morsel parallelism:
//! large joins/scans are partitioned by key range and the outer loops
//! (minimal-plan roots, per-answer sampling) run as tasks on a
//! persistent work-stealing pool shared by the whole process.
//! Answers are bit-identical at every thread count.
//!
//! The `bench` subcommand runs the whole experiment suite of the
//! `lapush-bench` crate and writes one machine-readable
//! `BENCH_<target>.json` report per experiment:
//!
//! ```console
//! $ lapush bench --quick --out bench-out [--threads N]
//! ```
//!
//! Compare the reports against committed baselines with the `bench-diff`
//! binary (exits non-zero on regression).
//!
//! The `serve` subcommand runs the always-on query service (wire
//! protocol in `docs/PROTOCOL.md`, operations guide in
//! `docs/OPERATIONS.md`), and `client` drives one scripted session
//! against it (requests read from stdin, blank-line separated):
//!
//! ```console
//! $ lapush serve --data ./facts --bind 127.0.0.1:7878 --threads 2 &
//! $ lapush client --addr 127.0.0.1:7878 < session.txt
//! ```
//!
//! `ingest` appends CSV rows from stdin to a served relation; with
//! `--stream` rows are sent in `--batch`-sized chunks as they arrive,
//! and the server merges each batch into its cached answers in place:
//!
//! ```console
//! $ tail -f rows.csv | lapush ingest --addr 127.0.0.1:7878 \
//!       --relation R --stream --batch 50
//! ```

use lapushdb::prelude::*;
use lapushdb::serve::{Client, Server, ServerConfig};
use lapushdb::storage::{database_from_dir, CsvOptions};
use lapushdb::{
    benchsuite, bound_answers_threaded, exact_answers, mc_answers_threaded, rank_by_dissociation,
    RankOptions,
};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{name}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("bench") => std::process::exit(run_bench()),
        Some("serve") => {
            if let Err(e) = run_serve() {
                eprintln!("lapush serve: {e}");
                std::process::exit(1);
            }
        }
        Some("client") => {
            if let Err(e) = run_client() {
                eprintln!("lapush client: {e}");
                std::process::exit(1);
            }
        }
        Some("ingest") => {
            if let Err(e) = run_ingest_cmd() {
                eprintln!("lapush ingest: {e}");
                std::process::exit(1);
            }
        }
        _ => {
            if let Err(e) = run() {
                eprintln!("lapush: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `lapush serve [--data DIR] [--bind ADDR] [--threads N]
/// [--plan-cache N] [--answer-cache N] [--no-probs]`: run the query
/// service in the foreground until killed. See `docs/OPERATIONS.md`.
fn run_serve() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig {
        bind: arg("bind").unwrap_or_else(|| "127.0.0.1:7878".into()),
        ..ServerConfig::default()
    };
    if let Some(t) = arg("threads") {
        config.threads = t
            .parse()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or("--threads needs a positive integer")?;
    }
    if let Some(n) = arg("plan-cache") {
        config.plan_cache_cap = n
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--plan-cache needs a positive integer")?;
    }
    if let Some(n) = arg("answer-cache") {
        config.answer_cache_cap = n
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--answer-cache needs a positive integer")?;
    }
    let db = match arg("data") {
        Some(dir) => {
            let opts = CsvOptions {
                prob_column: arg("no-probs").is_none(),
                deterministic: arg("no-probs").is_some(),
            };
            let db = database_from_dir(std::path::Path::new(&dir), opts)?;
            eprintln!(
                "loaded {} relations, {} tuples",
                db.relation_count(),
                db.tuple_count()
            );
            db
        }
        None => Database::new(),
    };
    let handle = Server::bind_with_db(db, config)?.spawn()?;
    eprintln!(
        "lapush serve: kernels {} (LAPUSH_KERNELS={})",
        lapushdb::engine::kernels::active().name(),
        lapushdb::engine::kernels::requested_mode()
    );
    println!("lapush serve: listening on {}", handle.addr());
    handle.join();
    Ok(())
}

/// `lapush client --addr HOST:PORT [--retry N]`: read blank-line
/// separated requests from stdin, print each response followed by a
/// blank line. Protocol-level `ERR` responses are printed like any other
/// response (scripts assert on them); only transport failures exit
/// non-zero.
fn run_client() -> Result<(), Box<dyn std::error::Error>> {
    let addr = arg("addr").ok_or("missing --addr HOST:PORT")?;
    let retries: u32 = match arg("retry") {
        Some(r) => r
            .parse()
            .ok()
            .filter(|&r| r >= 1)
            .ok_or("--retry needs a positive integer")?,
        None => 1,
    };
    let mut client = Client::connect_retry(
        addr.as_str(),
        retries,
        std::time::Duration::from_millis(250),
    )?;
    let stdin = std::io::read_to_string(std::io::stdin())?;
    for request in split_requests(&stdin) {
        let response = client.request(&request)?;
        println!("{response}\n");
    }
    Ok(())
}

/// `lapush ingest --addr HOST:PORT --relation NAME [--batch N]
/// [--stream] [--retry N]`: append CSV rows (last column = probability)
/// from stdin to a relation of a running server.
///
/// By default all of stdin is read first and sent as one `INGEST`
/// request. With `--stream`, rows are sent as soon as `--batch` of them
/// (default 100) have been read, so a live producer's tuples become
/// queryable — and are merged into the server's cached answers — while
/// the pipe is still open. Each server response is echoed to stdout; the
/// first `ERR` aborts with a non-zero exit.
fn run_ingest_cmd() -> Result<(), Box<dyn std::error::Error>> {
    let addr = arg("addr").ok_or("missing --addr HOST:PORT")?;
    let relation = arg("relation").ok_or("missing --relation NAME")?;
    let batch: usize = match arg("batch") {
        Some(b) => b
            .parse()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or("--batch needs a positive integer")?,
        None => 100,
    };
    let stream_mode = std::env::args().any(|a| a == "--stream");
    let retries: u32 = match arg("retry") {
        Some(r) => r
            .parse()
            .ok()
            .filter(|&r| r >= 1)
            .ok_or("--retry needs a positive integer")?,
        None => 1,
    };
    let mut client = Client::connect_retry(
        addr.as_str(),
        retries,
        std::time::Duration::from_millis(250),
    )?;
    let send = |client: &mut Client, rows: &[String]| -> Result<(), Box<dyn std::error::Error>> {
        let response = client.request(&format!("INGEST {relation}\n{}", rows.join("\n")))?;
        println!("{response}");
        if response.starts_with("ERR") {
            return Err("server rejected the batch".into());
        }
        Ok(())
    };
    let mut pending: Vec<String> = Vec::new();
    for line in std::io::stdin().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        pending.push(line);
        if stream_mode && pending.len() >= batch {
            send(&mut client, &pending)?;
            pending.clear();
        }
    }
    if !pending.is_empty() {
        send(&mut client, &pending)?;
    }
    Ok(())
}

/// Split a client script into request bodies: consecutive non-blank
/// lines form one request; blank lines separate requests.
fn split_requests(script: &str) -> Vec<String> {
    let mut requests = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for line in script.lines() {
        if line.trim().is_empty() {
            if !current.is_empty() {
                requests.push(current.join("\n"));
                current.clear();
            }
        } else {
            current.push(line);
        }
    }
    if !current.is_empty() {
        requests.push(current.join("\n"));
    }
    requests
}

/// `lapush bench [--quick|--full] [--out DIR] [--threads N]`: run the
/// experiment suite, forwarding the scale, output, and thread-count flags
/// to every experiment binary (each records the thread count in its
/// report metadata).
fn run_bench() -> i32 {
    let usage = "usage: lapush bench [--quick|--full] [--out DIR] [--threads N]";
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut forwarded: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--full" => forwarded.push(args[i].clone()),
            "--out" | "--threads" => {
                let flag = args[i].clone();
                let Some(value) = args.get(i + 1).filter(|d| !d.starts_with("--")) else {
                    eprintln!("lapush bench: {flag} needs a value\n{usage}");
                    return 2;
                };
                if flag == "--threads" && value.parse::<usize>().map_or(true, |t| t < 1) {
                    eprintln!("lapush bench: --threads needs a positive integer\n{usage}");
                    return 2;
                }
                forwarded.push(flag);
                forwarded.push(value.clone());
                i += 1;
            }
            out if out.starts_with("--out=") || out.starts_with("--threads=") => {
                forwarded.push(out.to_string())
            }
            other => {
                eprintln!("lapush bench: unexpected argument `{other}`\n{usage}");
                return 2;
            }
        }
        i += 1;
    }
    let bin_dir = match benchsuite::current_bin_dir() {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("lapush bench: cannot locate executable directory: {e}");
            return 1;
        }
    };
    // The experiment binaries inherit LAPUSH_KERNELS; log the path this
    // process resolved so suite logs are self-describing.
    eprintln!(
        "lapush bench: kernels {} (LAPUSH_KERNELS={})",
        lapushdb::engine::kernels::active().name(),
        lapushdb::engine::kernels::requested_mode()
    );
    let outcome = benchsuite::run_suite(&bin_dir, &forwarded);
    benchsuite::summarize(&outcome)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let query_text = arg("query").ok_or("missing --query '<datalog query>'")?;
    let q = parse_query(&query_text)?;
    let method = arg("method").unwrap_or_else(|| "diss".into());
    let threads: usize = match arg("threads") {
        Some(t) => t
            .parse()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or("--threads needs a positive integer")?,
        None => 1,
    };

    if method == "plans" {
        let shape = QueryShape::of_query(&q);
        let plans = minimal_plans(&shape);
        println!("{} minimal plan(s):", plans.len());
        for p in &plans {
            println!("  {}", p.render(&q));
        }
        return Ok(());
    }

    let data = arg("data").ok_or("missing --data <dir of CSV relations>")?;
    let opts = CsvOptions {
        prob_column: arg("no-probs").is_none(),
        deterministic: arg("no-probs").is_some(),
    };
    let db = database_from_dir(std::path::Path::new(&data), opts)?;
    eprintln!(
        "loaded {} relations, {} tuples",
        db.relation_count(),
        db.tuple_count()
    );

    match method.as_str() {
        "diss" => {
            let top_k: Option<usize> = match arg("top-k") {
                Some(k) => Some(
                    k.parse()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or("--top-k needs a positive integer")?,
                ),
                None => None,
            };
            let opts = RankOptions {
                threads,
                top_k,
                // Pruning only pays off across a plan set; single-plan
                // levels would evaluate fully and truncate.
                opt: if top_k.is_some() {
                    OptLevel::MultiPlan
                } else {
                    RankOptions::default().opt
                },
                ..RankOptions::default()
            };
            let ans = rank_by_dissociation(&db, &q, opts)?;
            print_answers(&ans, None);
        }
        "bounds" => {
            let (lower, upper) = bound_answers_threaded(&db, &q, threads)?;
            print_answers(&upper, Some(&lower));
        }
        "exact" => {
            let ans = exact_answers(&db, &q)?;
            print_answers(&ans, None);
        }
        "mc" => {
            let samples: usize = arg("samples").and_then(|s| s.parse().ok()).unwrap_or(1000);
            let ans = mc_answers_threaded(&db, &q, samples, 42, threads)?;
            print_answers(&ans, None);
        }
        "sql" => {
            let ans = lapushdb::engine::deterministic_answers_par(&db, &q, threads)?;
            for (key, _) in ans.ranked() {
                println!("{}", render_key(&key));
            }
        }
        other => return Err(format!("unknown --method `{other}`").into()),
    }
    Ok(())
}

fn render_key(key: &[Value]) -> String {
    if key.is_empty() {
        "(true)".to_string()
    } else {
        key.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn print_answers(ans: &AnswerSet, lower: Option<&AnswerSet>) {
    for (key, score) in ans.ranked() {
        match lower {
            Some(lo) => println!(
                "{}\t[{:.6}, {:.6}]",
                render_key(&key),
                lo.score_of(&key),
                score
            ),
            None => println!("{}\t{:.6}", render_key(&key), score),
        }
    }
}
