//! `lapush` — command-line probabilistic query evaluation.
//!
//! Load a directory of CSV relations (file stem = relation name, last
//! column = tuple probability) and evaluate a conjunctive query with the
//! method of your choice:
//!
//! ```console
//! $ lapush --data ./facts --query 'q(d) :- Directed(d, m), Starred(m, a)' \
//!          --method diss
//! ```
//!
//! Methods: `diss` (propagation score, default), `bounds` (sandwich
//! [low, ρ] interval), `exact` (WMC oracle), `mc` (Monte Carlo, with
//! `--samples`), `sql` (deterministic answers), `plans` (print plans only).

use lapushdb::prelude::*;
use lapushdb::storage::{database_from_dir, CsvOptions};
use lapushdb::{bound_answers, exact_answers, mc_answers, rank_by_dissociation, RankOptions};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{name}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lapush: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let query_text = arg("query").ok_or("missing --query '<datalog query>'")?;
    let q = parse_query(&query_text)?;
    let method = arg("method").unwrap_or_else(|| "diss".into());

    if method == "plans" {
        let shape = QueryShape::of_query(&q);
        let plans = minimal_plans(&shape);
        println!("{} minimal plan(s):", plans.len());
        for p in &plans {
            println!("  {}", p.render(&q));
        }
        return Ok(());
    }

    let data = arg("data").ok_or("missing --data <dir of CSV relations>")?;
    let opts = CsvOptions {
        prob_column: arg("no-probs").is_none(),
        deterministic: arg("no-probs").is_some(),
    };
    let db = database_from_dir(std::path::Path::new(&data), opts)?;
    eprintln!(
        "loaded {} relations, {} tuples",
        db.relation_count(),
        db.tuple_count()
    );

    match method.as_str() {
        "diss" => {
            let ans = rank_by_dissociation(&db, &q, RankOptions::default())?;
            print_answers(&ans, None);
        }
        "bounds" => {
            let (lower, upper) = bound_answers(&db, &q)?;
            print_answers(&upper, Some(&lower));
        }
        "exact" => {
            let ans = exact_answers(&db, &q)?;
            print_answers(&ans, None);
        }
        "mc" => {
            let samples: usize = arg("samples").and_then(|s| s.parse().ok()).unwrap_or(1000);
            let ans = mc_answers(&db, &q, samples, 42)?;
            print_answers(&ans, None);
        }
        "sql" => {
            let ans = deterministic_answers(&db, &q)?;
            for (key, _) in ans.ranked() {
                println!("{}", render_key(&key));
            }
        }
        other => return Err(format!("unknown --method `{other}`").into()),
    }
    Ok(())
}

fn render_key(key: &[Value]) -> String {
    if key.is_empty() {
        "(true)".to_string()
    } else {
        key.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn print_answers(ans: &AnswerSet, lower: Option<&AnswerSet>) {
    for (key, score) in ans.ranked() {
        match lower {
            Some(lo) => println!(
                "{}\t[{:.6}, {:.6}]",
                render_key(&key),
                lo.score_of(&key),
                score
            ),
            None => println!("{}\t{:.6}", render_key(&key), score),
        }
    }
}
