//! High-level drivers tying the crates together: one call from query text
//! to ranked answers, for each of the paper's evaluation methods.

use lapush_core::{
    minimal_plan_set_opts, single_plan_id, EnumOptions, PlanSet, PlanStore, SchemaInfo,
};
use lapush_engine::{
    eval_plan_id, propagation_score_ids, propagation_score_topk, reduce_database, AnswerSet,
    ExecError, ExecOptions, Semantics, TopkEval, TopkResult, TopkStats,
};
use lapush_lineage::{build_lineage, monte_carlo_each, ExactComputer, ExactStats, LineageError};
use lapush_query::Query;
use lapush_storage::{Database, FxHashMap, Value};
use std::fmt;

/// Which of the paper's evaluation strategies to use for the propagation
/// score (Section 4 / Figure 5 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Evaluate every minimal plan separately, take the minimum
    /// ("all plans" series).
    MultiPlan,
    /// Optimization 1: one single plan with `min` pushed down.
    Opt1,
    /// Optimizations 1+2: single plan with common-subplan view reuse.
    #[default]
    Opt12,
    /// Optimizations 1+2+3: additionally run a deterministic semi-join
    /// reduction on the input relations first.
    Opt123,
}

/// Options for [`rank_by_dissociation`].
#[derive(Debug, Clone, Copy)]
pub struct RankOptions {
    /// Evaluation strategy.
    pub opt: OptLevel,
    /// Use schema knowledge (deterministic relations from the catalog and
    /// `^d` markers; functional dependencies from the catalog) to reduce
    /// the number of plans (Section 3.3).
    pub use_schema: bool,
    /// Morsel-parallelism budget forwarded to the engine
    /// (`ExecOptions::threads`). `1` — the default — is strictly serial;
    /// any value yields bit-identical answers.
    pub threads: usize,
    /// Rank only the `k` best answers. Under [`OptLevel::MultiPlan`] this
    /// routes through the engine's anytime top-k driver
    /// ([`lapush_engine::propagation_score_topk`]): answer groups whose
    /// upper bound provably cannot reach the k-th best lower bound are
    /// pruned before the expensive multi-plan min-combine. Every other
    /// level evaluates fully and truncates. Either way the returned set
    /// is bit-identical to the first `k` entries of exhaustive ranking.
    pub top_k: Option<usize>,
}

impl Default for RankOptions {
    fn default() -> Self {
        RankOptions {
            opt: OptLevel::default(),
            use_schema: false,
            threads: 1,
            top_k: None,
        }
    }
}

/// Errors from the drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// Plan execution failed.
    Exec(ExecError),
    /// Lineage construction failed.
    Lineage(LineageError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Exec(e) => write!(f, "execution error: {e}"),
            DriverError::Lineage(e) => write!(f, "lineage error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ExecError> for DriverError {
    fn from(e: ExecError) -> Self {
        DriverError::Exec(e)
    }
}

impl From<LineageError> for DriverError {
    fn from(e: LineageError) -> Self {
        DriverError::Lineage(e)
    }
}

/// Compute the propagation score `ρ(q)` of every answer: the minimum over
/// all minimal safe dissociations of the extensional plan score
/// (Definition 14), with the requested optimization level.
pub fn rank_by_dissociation(
    db: &Database,
    q: &Query,
    opts: RankOptions,
) -> Result<AnswerSet, DriverError> {
    let schema = if opts.use_schema {
        SchemaInfo::from_db(q, db)
    } else {
        SchemaInfo::from_query(q)
    };
    let enum_opts = if opts.use_schema {
        EnumOptions::full()
    } else {
        EnumOptions::default()
    };

    let reduced;
    let data: &Database = if opts.opt == OptLevel::Opt123 {
        reduced = reduce_database(db, q);
        &reduced
    } else {
        db
    };

    // Plans stay in their hash-consed DAG form end to end: the enumerators
    // intern into a `PlanStore` and the engine evaluates ids against it —
    // no plan trees are materialized on this path.
    let exec_default = ExecOptions {
        threads: opts.threads,
        ..ExecOptions::default()
    };
    let ans = match opts.opt {
        OptLevel::MultiPlan => {
            let set = minimal_plan_set_opts(q, &schema, enum_opts);
            match opts.top_k {
                Some(k) => {
                    let res =
                        propagation_score_topk(data, q, &set.store, &set.roots, k, exec_default)?;
                    return Ok(answers_from_ranked(q, res.ranked));
                }
                None => propagation_score_ids(data, q, &set.store, &set.roots, exec_default)?,
            }
        }
        OptLevel::Opt1 => {
            let mut store = PlanStore::new();
            let root = single_plan_id(&mut store, q, &schema, enum_opts);
            eval_plan_id(data, q, &store, root, exec_default)?
        }
        OptLevel::Opt12 | OptLevel::Opt123 => {
            let mut store = PlanStore::new();
            let root = single_plan_id(&mut store, q, &schema, enum_opts);
            let exec = ExecOptions {
                semantics: Semantics::Probabilistic,
                reuse_views: true,
                threads: opts.threads,
            };
            eval_plan_id(data, q, &store, root, exec)?
        }
    };
    // Single-plan levels have no multi-plan combine to prune; honour
    // `top_k` by truncating the full evaluation through the bounded heap.
    Ok(match opts.top_k {
        Some(k) => answers_from_ranked(q, ans.ranked_top(k)),
        None => ans,
    })
}

/// Rebuild an [`AnswerSet`] from a ranked prefix (the heads stay in the
/// query's head order; rank order is recovered by `ranked()`).
fn answers_from_ranked(q: &Query, ranked: Vec<(Box<[Value]>, f64)>) -> AnswerSet {
    AnswerSet {
        vars: q.head().to_vec(),
        rows: ranked.into_iter().collect(),
    }
}

/// Enumerate the minimal plan set for [`anytime_rank`], with the same
/// schema treatment as [`rank_by_dissociation`]'s `MultiPlan` path. The
/// set must outlive the [`AnytimeRank`] stepping over it (the stepper
/// borrows the plan arena).
pub fn topk_plan_set(db: &Database, q: &Query, opts: RankOptions) -> PlanSet {
    let schema = if opts.use_schema {
        SchemaInfo::from_db(q, db)
    } else {
        SchemaInfo::from_query(q)
    };
    let enum_opts = if opts.use_schema {
        EnumOptions::full()
    } else {
        EnumOptions::default()
    };
    minimal_plan_set_opts(q, &schema, enum_opts)
}

/// Start an anytime top-k ranking over a prepared plan set: an iterator
/// of refinement snapshots whose `[lo, hi]` score intervals shrink as
/// plans are folded in, converging to the exact propagation scores.
///
/// `opts.opt` is ignored — anytime ranking is inherently multi-plan
/// (each folded plan tightens the upper bound).
pub fn anytime_rank<'a>(
    db: &'a Database,
    q: &'a Query,
    set: &'a PlanSet,
    k: usize,
    opts: RankOptions,
) -> Result<AnytimeRank<'a>, DriverError> {
    let exec = ExecOptions {
        threads: opts.threads,
        ..ExecOptions::default()
    };
    Ok(AnytimeRank {
        eval: TopkEval::new(db, q, &set.store, &set.roots, k, exec)?,
        started: false,
        failed: false,
    })
}

/// An in-flight anytime top-k ranking (see [`anytime_rank`]).
///
/// Each `next()` yields an [`AnytimeSnapshot`]; the first is available
/// after only the cheapest plan, and the last — when
/// [`AnytimeSnapshot::remaining`] reaches zero — carries exact scores
/// (`lo == hi`). Stop early for a fast approximate ranking, or drain it
/// (equivalently call [`AnytimeRank::finish`]) for the top-k set
/// bit-identical to exhaustive ranking.
pub struct AnytimeRank<'a> {
    eval: TopkEval<'a>,
    started: bool,
    failed: bool,
}

/// One refinement snapshot from [`AnytimeRank`].
#[derive(Debug, Clone)]
pub struct AnytimeSnapshot {
    /// Surviving candidate answers with `[lo, hi]` score intervals,
    /// sorted best upper bound first.
    pub bounds: Vec<(Box<[Value]>, f64, f64)>,
    /// Plans not yet folded in; `0` means `bounds` is exact.
    pub remaining: usize,
}

impl AnytimeRank<'_> {
    /// Pruning counters so far.
    pub fn stats(&self) -> TopkStats {
        self.eval.stats()
    }

    /// Fold in every remaining plan and return the final ranked top-k
    /// answers with their pruning counters.
    pub fn finish(self) -> Result<TopkResult, DriverError> {
        Ok(self.eval.finish()?)
    }
}

impl Iterator for AnytimeRank<'_> {
    type Item = Result<AnytimeSnapshot, DriverError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.started {
            match self.eval.step() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            }
        } else {
            self.started = true;
        }
        Some(Ok(AnytimeSnapshot {
            bounds: self.eval.bounds(),
            remaining: self.eval.remaining(),
        }))
    }
}

/// Sandwich bounds (extension beyond the paper): for every answer, a
/// guaranteed interval `[low, high]` around its true probability.
///
/// `high` is the propagation score `ρ(q)` (Definition 14). `low` evaluates
/// every minimal plan under [`Semantics::LowerBound`] (max-projections:
/// each answer's score is the probability of one consistent derivation,
/// hence a lower bound on the monotone lineage) and keeps the best bound
/// per answer.
pub fn bound_answers(db: &Database, q: &Query) -> Result<(AnswerSet, AnswerSet), DriverError> {
    bound_answers_threaded(db, q, 1)
}

/// [`bound_answers`] with a morsel-parallelism budget (bit-identical
/// bounds at every thread count).
pub fn bound_answers_threaded(
    db: &Database,
    q: &Query,
    threads: usize,
) -> Result<(AnswerSet, AnswerSet), DriverError> {
    let schema = SchemaInfo::from_query(q);
    let set = minimal_plan_set_opts(q, &schema, EnumOptions::default());
    let upper = propagation_score_ids(
        db,
        q,
        &set.store,
        &set.roots,
        ExecOptions {
            threads,
            ..ExecOptions::default()
        },
    )?;
    let low_opts = ExecOptions {
        semantics: Semantics::LowerBound,
        reuse_views: false,
        threads,
    };
    let mut lower: Option<AnswerSet> = None;
    for &root in &set.roots {
        let next = eval_plan_id(db, q, &set.store, root, low_opts)?;
        match &mut lower {
            None => lower = Some(next),
            Some(acc) => acc.max_with(&next),
        }
    }
    let lower = lower.expect("at least one plan");
    Ok((lower, upper))
}

/// Exact answer probabilities via lineage + weighted model counting
/// (the ground-truth oracle; exponential in lineage connectivity).
///
/// All answers are counted through one [`ExactComputer`], so the Shannon
/// memo built for one answer's lineage serves every later answer (their
/// DNFs share the same global variable numbering and usually overlap).
pub fn exact_answers(db: &Database, q: &Query) -> Result<AnswerSet, DriverError> {
    exact_answers_with_stats(db, q).map(|(ans, _)| ans)
}

/// [`exact_answers`] plus cumulative model-counting statistics — the
/// cross-answer memo hits show up in [`ExactStats::cache_hits`].
pub fn exact_answers_with_stats(
    db: &Database,
    q: &Query,
) -> Result<(AnswerSet, ExactStats), DriverError> {
    let lin = build_lineage(db, q)?;
    let mut comp = ExactComputer::new(&lin.var_probs);
    let mut rows: FxHashMap<Box<[Value]>, f64> = FxHashMap::default();
    for a in &lin.answers {
        rows.insert(a.key.clone(), comp.prob(&a.dnf));
    }
    Ok((
        AnswerSet {
            vars: q.head().to_vec(),
            rows,
        },
        comp.stats(),
    ))
}

/// Budgeted exact answers: `None` if any answer's model count exceeds
/// `max_calls` recursive steps (the explicit analogue of the paper skipping
/// SampleSearch ground truth when it becomes infeasible).
///
/// Each answer gets a fresh computer on purpose: the budget is a property
/// of one answer's formula, and a shared memo would let earlier answers
/// subsidize later ones, making the cut-off depend on answer order.
pub fn exact_answers_bounded(
    db: &Database,
    q: &Query,
    max_calls: u64,
) -> Result<Option<AnswerSet>, DriverError> {
    let lin = build_lineage(db, q)?;
    let mut rows: FxHashMap<Box<[Value]>, f64> = FxHashMap::default();
    for a in &lin.answers {
        match lapush_lineage::exact_prob_bounded(&a.dnf, &lin.var_probs, max_calls) {
            Some(p) => {
                rows.insert(a.key.clone(), p);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(AnswerSet {
        vars: q.head().to_vec(),
        rows,
    }))
}

/// Monte Carlo answer probabilities: `MC(samples)` of the experiments.
/// Deterministic for a fixed seed.
pub fn mc_answers(
    db: &Database,
    q: &Query,
    samples: usize,
    seed: u64,
) -> Result<AnswerSet, DriverError> {
    mc_answers_threaded(db, q, samples, seed, 1)
}

/// [`mc_answers`] with a thread budget: answers are sampled in parallel
/// (each answer keeps its own `seed + index` RNG, so the estimates are
/// bit-identical to the serial loop at every thread count).
pub fn mc_answers_threaded(
    db: &Database,
    q: &Query,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Result<AnswerSet, DriverError> {
    let lin = build_lineage(db, q)?;
    let dnfs: Vec<&lapush_lineage::Dnf> = lin.answers.iter().map(|a| &a.dnf).collect();
    let estimates = monte_carlo_each(&dnfs, &lin.var_probs, samples, seed, threads);
    let mut rows: FxHashMap<Box<[Value]>, f64> = FxHashMap::default();
    for (a, p) in lin.answers.iter().zip(estimates) {
        rows.insert(a.key.clone(), p);
    }
    Ok(AnswerSet {
        vars: q.head().to_vec(),
        rows,
    })
}

/// Lineage statistics per answer: `(answer, lineage size)` — the
/// "ranking by lineage size" baseline — plus the maximum lineage size
/// (the paper's `max[lin]`).
pub fn lineage_stats(db: &Database, q: &Query) -> Result<(AnswerSet, usize), DriverError> {
    let lin = build_lineage(db, q)?;
    let mut rows: FxHashMap<Box<[Value]>, f64> = FxHashMap::default();
    for a in &lin.answers {
        rows.insert(a.key.clone(), a.dnf.len() as f64);
    }
    Ok((
        AnswerSet {
            vars: q.head().to_vec(),
            rows,
        },
        lin.max_size(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lapush_query::parse_query;

    #[test]
    fn sandwich_bounds_contain_exact() {
        let db = rst_db();
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let (lower, upper) = bound_answers(&db, &q).unwrap();
        let exact = exact_answers(&db, &q).unwrap().boolean_score();
        assert!(lower.boolean_score() <= exact + 1e-12);
        assert!(upper.boolean_score() >= exact - 1e-12);
        assert!(lower.boolean_score() > 0.0);
    }

    fn rst_db() -> Database {
        let mut db = Database::new();
        let r = db.create_relation("R", 1).unwrap();
        let s = db.create_relation("S", 2).unwrap();
        let t = db.create_relation("T", 1).unwrap();
        for x in [1, 2] {
            db.relation_mut(r)
                .push(Box::new([Value::Int(x)]), 0.5)
                .unwrap();
            db.relation_mut(t)
                .push(Box::new([Value::Int(x)]), 0.5)
                .unwrap();
        }
        for (x, y) in [(1, 1), (1, 2), (2, 2)] {
            db.relation_mut(s)
                .push(Box::new([Value::Int(x), Value::Int(y)]), 0.5)
                .unwrap();
        }
        db
    }

    #[test]
    fn all_opt_levels_agree() {
        let db = rst_db();
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let base = rank_by_dissociation(
            &db,
            &q,
            RankOptions {
                opt: OptLevel::MultiPlan,
                use_schema: false,
                threads: 1,
                top_k: None,
            },
        )
        .unwrap()
        .boolean_score();
        for opt in [OptLevel::Opt1, OptLevel::Opt12, OptLevel::Opt123] {
            let got = rank_by_dissociation(
                &db,
                &q,
                RankOptions {
                    opt,
                    use_schema: false,
                    threads: 1,
                    top_k: None,
                },
            )
            .unwrap()
            .boolean_score();
            assert!((got - base).abs() < 1e-12, "{opt:?}");
        }
    }

    #[test]
    fn dissociation_upper_bounds_exact() {
        let db = rst_db();
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let rho = rank_by_dissociation(&db, &q, RankOptions::default())
            .unwrap()
            .boolean_score();
        let exact = exact_answers(&db, &q).unwrap().boolean_score();
        assert!(rho >= exact - 1e-12);
        assert!(rho <= 1.0);
    }

    #[test]
    fn mc_converges_to_exact() {
        let db = rst_db();
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let exact = exact_answers(&db, &q).unwrap().boolean_score();
        let mc = mc_answers(&db, &q, 100_000, 7).unwrap().boolean_score();
        assert!((mc - exact).abs() < 0.01, "mc {mc} exact {exact}");
    }

    #[test]
    fn exact_answers_shared_memo_matches_per_answer_computation() {
        use lapush_lineage::exact_prob;
        let db = rst_db();
        let q = parse_query("q(x) :- R(x), S(x, y), T(y)").unwrap();
        let (ans, stats) = exact_answers_with_stats(&db, &q).unwrap();
        assert!(stats.calls > 0);
        // The shared-memo answers are bit-identical to fresh per-answer
        // model counting.
        let lin = lapush_lineage::build_lineage(&db, &q).unwrap();
        for a in &lin.answers {
            let fresh = exact_prob(&a.dnf, &lin.var_probs);
            assert_eq!(ans.score_of(&a.key), fresh);
        }
    }

    #[test]
    fn lineage_stats_reports_sizes() {
        let db = rst_db();
        let q = parse_query("q(x) :- R(x), S(x, y), T(y)").unwrap();
        let (sizes, max_lin) = lineage_stats(&db, &q).unwrap();
        // x=1 joins two S-tuples, x=2 one.
        assert_eq!(sizes.score_of(&[Value::Int(1)]), 2.0);
        assert_eq!(sizes.score_of(&[Value::Int(2)]), 1.0);
        assert_eq!(max_lin, 2);
    }

    #[test]
    fn top_k_matches_exhaustive_prefix_across_levels() {
        let db = rst_db();
        let q = parse_query("q(x) :- R(x), S(x, y), T(y)").unwrap();
        for opt in [
            OptLevel::MultiPlan,
            OptLevel::Opt1,
            OptLevel::Opt12,
            OptLevel::Opt123,
        ] {
            let base = RankOptions {
                opt,
                ..RankOptions::default()
            };
            let full = rank_by_dissociation(&db, &q, base).unwrap();
            // k = 1 (proper prefix), k = answer count, k beyond it.
            for k in [1, full.len(), full.len() + 3] {
                let top = rank_by_dissociation(
                    &db,
                    &q,
                    RankOptions {
                        top_k: Some(k),
                        ..base
                    },
                )
                .unwrap();
                let want = full.ranked_top(k);
                let got = top.ranked();
                assert_eq!(want.len(), got.len(), "{opt:?} k={k}");
                for ((wk, ws), (gk, gs)) in want.iter().zip(got.iter()) {
                    assert_eq!(wk, gk, "{opt:?} k={k}");
                    assert_eq!(ws.to_bits(), gs.to_bits(), "{opt:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn anytime_iterator_shrinks_to_exact() {
        let db = rst_db();
        // The Boolean variant is unsafe and has two minimal plans.
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let opts = RankOptions::default();
        let set = topk_plan_set(&db, &q, opts);
        assert!(set.roots.len() > 1, "query must be multi-plan");

        let snaps: Vec<AnytimeSnapshot> = anytime_rank(&db, &q, &set, 1, opts)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        // One snapshot per plan, with `remaining` counting down to exact.
        assert_eq!(snaps.len(), set.roots.len());
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.remaining, set.roots.len() - 1 - i);
            for (_, lo, hi) in &snap.bounds {
                assert!(lo <= hi, "interval must be ordered");
            }
        }
        for (_, lo, hi) in &snaps.last().unwrap().bounds {
            assert_eq!(lo.to_bits(), hi.to_bits(), "final bounds are exact");
        }

        // Draining via `finish` reproduces exhaustive ranking bitwise.
        let fresh = anytime_rank(&db, &q, &set, 1, opts).unwrap();
        let res = fresh.finish().unwrap();
        let full = rank_by_dissociation(
            &db,
            &q,
            RankOptions {
                opt: OptLevel::MultiPlan,
                ..opts
            },
        )
        .unwrap();
        let want = full.ranked_top(1);
        assert_eq!(res.ranked.len(), want.len());
        assert_eq!(res.ranked[0].0, want[0].0);
        assert_eq!(res.ranked[0].1.to_bits(), want[0].1.to_bits());
    }

    #[test]
    fn schema_knowledge_changes_nothing_without_schema() {
        let db = rst_db();
        let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
        let a = rank_by_dissociation(
            &db,
            &q,
            RankOptions {
                opt: OptLevel::Opt12,
                use_schema: true,
                threads: 1,
                top_k: None,
            },
        )
        .unwrap()
        .boolean_score();
        let b = rank_by_dissociation(
            &db,
            &q,
            RankOptions {
                opt: OptLevel::Opt12,
                use_schema: false,
                threads: 1,
                top_k: None,
            },
        )
        .unwrap()
        .boolean_score();
        assert!((a - b).abs() < 1e-12);
    }
}
