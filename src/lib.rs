//! # LaPushDB — Approximate Lifted Inference with Probabilistic Databases
//!
//! A Rust implementation of **query dissociation** (Gatterbauer & Suciu,
//! *Approximate Lifted Inference with Probabilistic Databases*, VLDB 2015):
//! ranking the answers of #P-hard self-join-free conjunctive queries over
//! tuple-independent probabilistic databases by evaluating a fixed set of
//! *minimal safe dissociations* — PTIME plans whose extensional scores
//! upper-bound the true probabilities — and taking their minimum (the
//! propagation score `ρ(q)`).
//!
//! ## Quick start
//!
//! ```
//! use lapushdb::prelude::*;
//!
//! // A tuple-independent probabilistic database.
//! let mut db = Database::new();
//! let r = db.create_relation("R", 1).unwrap();
//! let s = db.create_relation("S", 2).unwrap();
//! let t = db.create_relation("T", 1).unwrap();
//! db.relation_mut(r).push(Box::new([Value::Int(1)]), 0.5).unwrap();
//! db.relation_mut(s).push(Box::new([Value::Int(1), Value::Int(2)]), 0.8).unwrap();
//! db.relation_mut(t).push(Box::new([Value::Int(2)]), 0.4).unwrap();
//!
//! // An unsafe (#P-hard) query…
//! let q = parse_query("q :- R(x), S(x, y), T(y)").unwrap();
//! // …approximated by its propagation score, entirely via query plans:
//! let answers = rank_by_dissociation(&db, &q, RankOptions::default()).unwrap();
//! let rho = answers.boolean_score();
//! assert!(rho > 0.0 && rho <= 1.0);
//!
//! // Compare with the exact probability (lineage + weighted model counting):
//! let exact = exact_answers(&db, &q).unwrap().boolean_score();
//! assert!(rho >= exact - 1e-12); // one-sided guarantee (Corollary 19)
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | values, tuples, relations, probabilistic databases, FDs |
//! | [`query`] | sjfCQ AST + parser, hierarchy test, cut-sets, FD closure |
//! | [`core`] | dissociations, Algorithm 1 (+DR/FD), hash-consed plan DAG, Opts 1–2 |
//! | [`engine`] | extensional executor over plan ids, view reuse, semi-join reduction |
//! | [`serve`] | always-on TCP query service: wire protocol, plan + answer caches |
//! | [`lineage`] | lineage DNFs, exact WMC, Monte Carlo, Karp–Luby |
//! | [`rank`] | tie-aware AP@k / MAP metrics |
//! | [`workload`] | TPC-H-style, k-chain, k-star, random generators |
//!
//! The stage-by-stage walkthrough — parse → shape/FD analysis → plan DAG
//! enumeration → dictionary-encoded execution → lineage/ranking, with each
//! stage cross-referenced to its paper section and source file — lives in
//! [docs/ARCHITECTURE.md](../../../docs/ARCHITECTURE.md) in the repository.
//!
//! ## Benchmarking
//!
//! The `lapush` CLI doubles as the experiment-suite driver:
//!
//! ```console
//! $ cargo build --release --workspace
//! $ ./target/release/lapush bench --quick --out bench-out
//! ```
//!
//! runs every experiment binary of the `lapush-bench` crate (the
//! [`benchsuite::SUITE`] list) and collects one machine-readable
//! `BENCH_<target>.json` report per experiment in `--out` — wall-time
//! samples with median + MAD, result checksums, and toolchain metadata
//! under a versioned schema. `--quick` runs smoke sizes (what CI gates
//! on), `--full` paper-scale sweeps; omit both for the defaults.
//!
//! The companion `bench-diff` binary compares a report directory against
//! the committed baselines and exits non-zero on regression:
//!
//! ```console
//! $ ./target/release/bench-diff --baseline benches/baselines --current bench-out
//! ```
//!
//! See `benches/baselines/README.md` for how baselines are regenerated.

#![deny(rustdoc::broken_intra_doc_links)]

pub use lapush_core as core;
pub use lapush_engine as engine;
pub use lapush_lineage as lineage;
pub use lapush_query as query;
pub use lapush_rank as rank;
pub use lapush_serve as serve;
pub use lapush_storage as storage;
pub use lapush_workload as workload;

pub mod benchsuite;
pub mod driver;

pub use driver::{
    anytime_rank, bound_answers, bound_answers_threaded, exact_answers, exact_answers_bounded,
    exact_answers_with_stats, lineage_stats, mc_answers, mc_answers_threaded, rank_by_dissociation,
    topk_plan_set, AnytimeRank, AnytimeSnapshot, DriverError, OptLevel, RankOptions,
};

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::driver::{
        exact_answers, lineage_stats, mc_answers, rank_by_dissociation, OptLevel, RankOptions,
    };
    pub use lapush_core::{
        minimal_plan_set, minimal_plans, minimal_plans_opts, single_plan, EnumOptions, Plan,
        PlanId, PlanSet, PlanStore, SchemaInfo,
    };
    pub use lapush_engine::{
        deterministic_answers, eval_plan, propagation_score, reduce_database, AnswerSet,
        ExecOptions, Semantics,
    };
    pub use lapush_lineage::{build_lineage, exact_prob, monte_carlo, Dnf};
    pub use lapush_query::{parse_query, Query, QueryBuilder, QueryShape};
    pub use lapush_rank::{average_precision_at_k, map_at_k, random_baseline_ap};
    pub use lapush_storage::{Database, Relation, Value};
}
