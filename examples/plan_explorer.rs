//! Interactive plan explorer: parse a query from the command line and
//! print its safety status, dissociation counts, all minimal plans with
//! the hash-consed DAG's sharing statistics, and the combined single plan
//! with its shared views.
//!
//! Run with:
//! `cargo run --example plan_explorer -- 'q(z) :- R(z, x), S(x, y), T(y)'`
//!
//! The expected output for the default query is reproduced in
//! `docs/ARCHITECTURE.md`.

use lapushdb::core::{
    count_all_plans, count_dissociations, count_minimal_plans, minimal_plan_set,
    shared_subqueries_in, single_plan_id, EnumOptions, SchemaInfo,
};
use lapushdb::engine::plan_cost_estimates;
use lapushdb::prelude::*;
use lapushdb::query::is_hierarchical;
use lapushdb::workload::random_db_for_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "q :- R(x), S(x), T(x, y), U(y)".to_string());
    let q = parse_query(&text)?;
    println!("query:   {}", q.display());

    let shape = QueryShape::of_query(&q);
    let atoms = shape.all_atoms();
    let hierarchical = is_hierarchical(&shape, &atoms, shape.head);
    println!(
        "status:  {}",
        if hierarchical {
            "hierarchical — SAFE (PTIME, Dalvi-Suciu dichotomy)"
        } else {
            "not hierarchical — #P-HARD; approximating by dissociation"
        }
    );

    println!("\ncounts:");
    println!("  dissociations:          {}", count_dissociations(&shape));
    println!("  safe dissociations:     {}", count_all_plans(&shape));
    println!("  minimal plans:          {}", count_minimal_plans(&shape));

    let set = minimal_plan_set(&shape);
    let plans = set.plans();
    println!("\nminimal plans (each an upper bound; ρ(q) = their minimum):");
    for (i, p) in plans.iter().enumerate() {
        println!("  P{}: {}", i + 1, p.render(&q));
    }

    // Hash-consing statistics: the enumerator interns structurally equal
    // subplans once, so the DAG is (much) smaller than the forest of
    // materialized plan trees.
    println!(
        "\nplan DAG: {} interned nodes vs {} materialized tree nodes ({} plans)",
        set.dag_node_count(),
        set.tree_node_count(),
        set.len()
    );

    // The engine evaluates multi-plan sets cheapest-first (reachable node
    // count × input cardinality), which is also what lets the anytime
    // top-k driver tighten its pruning threshold fastest. Cardinalities
    // come from the database, so the ordering is demonstrated against a
    // small seeded demo instance of the query's relations.
    let demo = random_db_for_query(&q, 7, 64, 8, 1.0)?;
    let mut est = plan_cost_estimates(&demo, &q, &set.store, &set.roots);
    est.sort_by_key(|&(_, cost)| cost);
    println!("\nevaluation order (cheapest-first, nodes × input rows, demo db):");
    for (rank, (root, cost)) in est.iter().enumerate() {
        let pos = set.roots.iter().position(|r| r == root).unwrap() + 1;
        println!(
            "  {}. P{pos} (cost {cost}): {}",
            rank + 1,
            set.store.plan(*root).render(&q)
        );
    }

    let schema = SchemaInfo::from_query(&q);
    let mut sp_store = PlanStore::new();
    let sp = single_plan_id(&mut sp_store, &q, &schema, EnumOptions::default());
    println!("\nsingle plan (Optimization 1):");
    println!("  {}", sp_store.plan(sp).render(&q));

    let shared: Vec<_> = shared_subqueries_in(&sp_store, sp)
        .into_iter()
        .filter(|(_, c)| *c >= 2)
        .collect();
    if shared.is_empty() {
        println!("\nno shared subplans (Optimization 2 adds nothing here)");
    } else {
        println!("\nshared subplans (materialized as views by Optimization 2):");
        for ((mask, head), count) in shared {
            let atom_names: Vec<&str> = q
                .atoms()
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a.relation.as_str())
                .collect();
            let head_names: Vec<&str> = head.iter().map(|v| q.var_name(v)).collect();
            println!(
                "  view over {{{}}} with head ({}) used {count}×",
                atom_names.join(", "),
                head_names.join(", ")
            );
        }
    }

    // Schema-aware enumeration if any atom is marked deterministic.
    if q.atoms().iter().any(|a| a.declared_deterministic) {
        let plans_dr = lapushdb::core::minimal_plans_opts(
            &q,
            &schema,
            EnumOptions {
                use_deterministic: true,
                use_fds: false,
            },
        );
        println!(
            "\nwith deterministic-relation knowledge: {} plan(s)",
            plans_dr.len()
        );
        for p in &plans_dr {
            println!("  {}", p.render(&q));
        }
    }
    Ok(())
}
