//! Setup 1 of the paper in miniature: rank the 25 TPC-H nations by the
//! probability that they host a supplier of a matching part, comparing
//! dissociation against exact inference, Monte Carlo, and lineage-size
//! ranking — with wall-clock times.
//!
//! Run with: `cargo run --release --example tpch_ranking [-- <$1> <$2>]`
//! e.g. `cargo run --release --example tpch_ranking -- 200 '%red%'`

use lapushdb::prelude::*;
use lapushdb::workload::{tpch_db, tpch_query, TpchConfig};
use lapushdb::{exact_answers, lineage_stats, mc_answers, rank_by_dissociation, RankOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let param1: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let param2: String = args.get(2).cloned().unwrap_or_else(|| "%red%".into());

    let cfg = TpchConfig {
        suppliers: 300,
        parts: 3000,
        pi_max: 0.4,
        seed: 7,
    };
    println!(
        "generating synthetic TPC-H: {} suppliers, {} parts, avg[pi] = {}",
        cfg.suppliers,
        cfg.parts,
        cfg.pi_max / 2.0
    );
    let db = tpch_db(cfg)?;
    let q = tpch_query(param1, &param2);
    println!("query: {}\n", q.display());

    // Dissociation (all optimizations).
    let t0 = Instant::now();
    let rho = rank_by_dissociation(
        &db,
        &q,
        RankOptions {
            opt: lapushdb::OptLevel::Opt123,
            use_schema: false,
            threads: 1,
            top_k: None,
        },
    )?;
    let t_diss = t0.elapsed();

    // Lineage (the minimum cost of *any* intensional method).
    let t0 = Instant::now();
    let (lin_sizes, max_lin) = lineage_stats(&db, &q)?;
    let t_lineage = t0.elapsed();

    // Exact ground truth.
    let t0 = Instant::now();
    let gt = exact_answers(&db, &q)?;
    let t_exact = t0.elapsed();

    // Monte Carlo with 1000 samples.
    let t0 = Instant::now();
    let mc = mc_answers(&db, &q, 1000, 99)?;
    let t_mc = t0.elapsed();

    // Deterministic SQL baseline.
    let t0 = Instant::now();
    let det = deterministic_answers(&db, &q)?;
    let t_sql = t0.elapsed();

    println!("answers: {} nations, max lineage size {max_lin}", gt.len());
    println!("\n{:<22} {:>12}", "method", "time");
    println!("{:<22} {:>12?}", "standard SQL", t_sql);
    println!("{:<22} {:>12?}", "dissociation (Opt123)", t_diss);
    println!("{:<22} {:>12?}", "lineage query", t_lineage);
    println!("{:<22} {:>12?}", "MC(1k)", t_mc);
    println!("{:<22} {:>12?}", "exact (WMC)", t_exact);

    // Ranking quality against the exact ground truth.
    let keys: Vec<_> = gt.rows.keys().cloned().collect();
    let truth: Vec<f64> = keys.iter().map(|k| gt.score_of(k)).collect();
    let ap = |sys: &AnswerSet| {
        let scores: Vec<f64> = keys.iter().map(|k| sys.score_of(k)).collect();
        average_precision_at_k(&scores, &truth, 10)
    };
    println!("\n{:<22} {:>8}", "method", "AP@10");
    println!("{:<22} {:>8.3}", "dissociation", ap(&rho));
    println!("{:<22} {:>8.3}", "MC(1k)", ap(&mc));
    println!("{:<22} {:>8.3}", "lineage size", ap(&lin_sizes));
    println!(
        "{:<22} {:>8.3}",
        "random baseline",
        random_baseline_ap(keys.len(), 10)
    );
    let _ = det;

    println!("\ntop-5 nations by propagation score:");
    for (key, score) in rho.ranked().into_iter().take(5) {
        println!(
            "  nation {:>2}  ρ = {:.6}   P = {:.6}",
            key[0],
            score,
            gt.score_of(&key)
        );
    }
    Ok(())
}
