//! Schema knowledge in action (Section 3.3): deterministic relations and
//! functional dependencies turn #P-hard queries safe — and the enumeration
//! algorithm then returns a single exact plan.
//!
//! Run with: `cargo run --example schema_knowledge`

use lapushdb::core::{minimal_plans_opts, EnumOptions, SchemaInfo};
use lapushdb::prelude::*;
use lapushdb::storage::Fd;
use lapushdb::{exact_answers, rank_by_dissociation, OptLevel, RankOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sensor-deployment database: Rooms is a certain (deterministic)
    // dimension table; readings are uncertain.
    let mut db = Database::new();
    let sensors = db.create_relation("Sensor", 1)?; // (sensor)
    let placed = db.create_relation("Placed", 2)?; // (sensor, room)
    let rooms = db.create_deterministic("Room", 1)?; // (room) — certain!

    for (s, p) in [(1, 0.9), (2, 0.7), (3, 0.5), (4, 0.8)] {
        db.relation_mut(sensors)
            .push(Box::new([Value::Int(s)]), p)?;
    }
    for (s, r, p) in [
        (1, 10, 0.8),
        (1, 11, 0.6),
        (2, 10, 0.9),
        (3, 12, 0.7),
        (4, 12, 0.4),
    ] {
        db.relation_mut(placed)
            .push(Box::new([Value::Int(s), Value::Int(r)]), p)?;
    }
    for r in [10, 11, 12] {
        db.relation_mut(rooms)
            .push_certain(Box::new([Value::Int(r)]))?;
    }

    // "Is some working sensor placed in some room?" — the R(x),S(x,y),T(y)
    // pattern, #P-hard in general.
    let q = parse_query("q :- Sensor(x), Placed(x, y), Room(y)")?;
    println!("query: {}", q.display());

    // Without schema knowledge: two minimal plans.
    let plain = SchemaInfo::from_query(&q);
    let plans_plain = minimal_plans_opts(&q, &plain, EnumOptions::default());
    println!("\nwithout schema knowledge: {} plans", plans_plain.len());
    for p in &plans_plain {
        println!("  {}", p.render(&q));
    }

    // With the catalog: Room is deterministic → the query is SAFE and a
    // single plan computes the exact probability (Example 23).
    let schema = SchemaInfo::from_db(&q, &db);
    let plans_dr = minimal_plans_opts(
        &q,
        &schema,
        EnumOptions {
            use_deterministic: true,
            use_fds: false,
        },
    );
    println!(
        "\nwith deterministic-relation knowledge: {} plan",
        plans_dr.len()
    );
    for p in &plans_dr {
        println!("  {}", p.render(&q));
    }

    let rho = rank_by_dissociation(
        &db,
        &q,
        RankOptions {
            opt: OptLevel::MultiPlan,
            use_schema: true,
            threads: 1,
            top_k: None,
        },
    )?
    .boolean_score();
    let exact = exact_answers(&db, &q)?.boolean_score();
    println!("\nρ(q) = {rho:.6}, P(q) = {exact:.6} (equal: query is safe with DRs)");
    assert!((rho - exact).abs() < 1e-12);

    // Functional dependencies: if each sensor sits in exactly one room
    // (Placed: sensor → room), the query is safe even with Room uncertain.
    let mut db2 = Database::new();
    let s2 = db2.create_relation("Sensor", 1)?;
    let p2 = db2.create_relation("Placed", 2)?;
    let r2 = db2.create_relation("Room", 1)?;
    for (s, p) in [(1, 0.9), (2, 0.7), (3, 0.5)] {
        db2.relation_mut(s2).push(Box::new([Value::Int(s)]), p)?;
    }
    for (s, r, p) in [(1, 10, 0.8), (2, 10, 0.9), (3, 12, 0.7)] {
        db2.relation_mut(p2)
            .push(Box::new([Value::Int(s), Value::Int(r)]), p)?;
    }
    for (r, p) in [(10, 0.6), (12, 0.5)] {
        db2.relation_mut(r2).push(Box::new([Value::Int(r)]), p)?;
    }
    db2.relation_by_name_mut("Placed")?
        .add_fd(Fd::new([0], [1]))?;
    assert!(db2
        .relation_by_name("Placed")?
        .satisfies_fd(&Fd::new([0], [1])));

    let schema_fd = SchemaInfo::from_db(&q, &db2);
    let plans_fd = minimal_plans_opts(&q, &schema_fd, EnumOptions::full());
    println!(
        "\nwith the FD Placed: sensor → room: {} plan",
        plans_fd.len()
    );
    for p in &plans_fd {
        println!("  {}", p.render(&q));
    }
    let rho_fd = propagation_score(&db2, &q, &plans_fd, ExecOptions::default())?.boolean_score();
    let exact_fd = exact_answers(&db2, &q)?.boolean_score();
    println!("ρ(q) = {rho_fd:.6}, P(q) = {exact_fd:.6} (equal: safe under the FD)");
    assert!((rho_fd - exact_fd).abs() < 1e-12);
    Ok(())
}
