//! Quickstart: rank answers of a #P-hard query over an uncertain
//! knowledge base using query dissociation.
//!
//! Run with: `cargo run --example quickstart`

use lapushdb::prelude::*;
use lapushdb::{bound_answers, exact_answers, rank_by_dissociation, RankOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An uncertain movie knowledge base, as produced by an information
    // extraction pipeline: every fact carries a confidence.
    let mut db = Database::new();
    let directed = db.create_relation("Directed", 2)?; // (director, movie)
    let starred = db.create_relation("Starred", 2)?; // (movie, actor)
    let won = db.create_relation("Won", 1)?; // (actor)

    let facts: &[(&str, &str, f64)] = &[
        ("kubrick", "shining", 0.95),
        ("kubrick", "odyssey", 0.9),
        ("scott", "alien", 0.8),
        ("scott", "bladerunner", 0.7),
        ("jackson", "lotr", 0.9),
    ];
    for (d, m, p) in facts {
        db.relation_mut(directed)
            .push(Box::new([Value::str(*d), Value::str(*m)]), *p)?;
    }
    let cast: &[(&str, &str, f64)] = &[
        ("shining", "nicholson", 0.9),
        ("odyssey", "dullea", 0.6),
        ("alien", "weaver", 0.9),
        ("bladerunner", "ford", 0.85),
        ("bladerunner", "hauer", 0.8),
        ("lotr", "mckellen", 0.95),
    ];
    for (m, a, p) in cast {
        db.relation_mut(starred)
            .push(Box::new([Value::str(*m), Value::str(*a)]), *p)?;
    }
    for (a, p) in [
        ("nicholson", 0.9),
        ("weaver", 0.5),
        ("ford", 0.3),
        ("mckellen", 0.8),
        ("hauer", 0.4),
    ] {
        db.relation_mut(won).push(Box::new([Value::str(a)]), p)?;
    }

    // "Which directors made a movie starring an award winner?" — the
    // unsafe (#P-hard) pattern R(z,x), S(x,y), T(y).
    let q = parse_query("q(d) :- Directed(d, m), Starred(m, a), Won(a)")?;
    println!("query: {}\n", q.display());

    // Minimal safe dissociations / plans:
    let shape = QueryShape::of_query(&q);
    let plans = minimal_plans(&shape);
    println!("{} minimal plans:", plans.len());
    for p in &plans {
        println!("  {}", p.render(&q));
    }

    // Propagation score (upper bound, evaluated purely with plans):
    let rho = rank_by_dissociation(&db, &q, RankOptions::default())?;
    // Exact probabilities (exponential-time lineage oracle, for reference):
    let exact = exact_answers(&db, &q)?;

    println!("\n{:<12} {:>10} {:>10}", "director", "ρ(q)", "P(q)");
    for (key, score) in rho.ranked() {
        let name = key[0].to_string();
        println!(
            "{:<12} {:>10.6} {:>10.6}",
            name,
            score,
            exact.score_of(&key)
        );
    }
    println!("\nρ(q) ≥ P(q) for every answer (Corollary 19), and the");
    println!("ranking by ρ matches the exact ranking here.");

    // Extension: guaranteed intervals around each answer.
    let (lower, upper) = bound_answers(&db, &q)?;
    println!("\nsandwich bounds (lower from max-projection plans):");
    for (key, hi) in upper.ranked() {
        println!(
            "  {:<12} [{:.6}, {:.6}]",
            key[0].to_string(),
            lower.score_of(&key),
            hi
        );
    }
    Ok(())
}
